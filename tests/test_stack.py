"""Tests for the DPDK-style stack: mbuf lifecycle, mempool, dataplane."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, ProtocolError
from repro.mem.layout import AddressSpace
from repro.stack.dataplane import Dataplane, DataplaneConfig
from repro.stack.mbuf import Mbuf, MbufState
from repro.stack.mempool import Mempool
from repro.traffic import MemCategory

from tests.conftest import make_tiny_system


def make_mbuf(size=256) -> Mbuf:
    return Mbuf(index=0, address=4096, size=size)


class TestMbufLifecycle:
    def test_happy_path(self):
        m = make_mbuf()
        m.give_to_nic()
        m.nic_deliver(200)
        assert m.state is MbufState.APP_OWNED
        blocks = m.app_read()
        assert len(blocks) == 4  # ceil(200/64)
        m.relinquish()
        m.recycle(require_relinquish=True)
        assert m.state is MbufState.FREE
        assert m.generation == 1

    def test_multiple_reads_before_relinquish_allowed(self):
        """§V-C: relinquish marks the *last* use, not the only one."""
        m = make_mbuf()
        m.give_to_nic()
        m.nic_deliver(64)
        m.app_read()
        m.app_read()
        assert m.reads == 2
        m.relinquish()

    def test_read_after_relinquish_is_undefined_behaviour(self):
        m = make_mbuf()
        m.give_to_nic()
        m.nic_deliver(64)
        m.relinquish()
        with pytest.raises(ProtocolError, match="use-after-free"):
            m.app_read()

    def test_recycle_without_relinquish_rejected_when_required(self):
        m = make_mbuf()
        m.give_to_nic()
        m.nic_deliver(64)
        with pytest.raises(ProtocolError, match="race"):
            m.recycle(require_relinquish=True)

    def test_baseline_stack_recycles_without_relinquish(self):
        m = make_mbuf()
        m.give_to_nic()
        m.nic_deliver(64)
        m.recycle(require_relinquish=False)
        assert m.state is MbufState.FREE

    def test_oversized_packet_rejected(self):
        m = make_mbuf(size=128)
        m.give_to_nic()
        with pytest.raises(ProtocolError):
            m.nic_deliver(256)

    def test_deliver_requires_nic_ownership(self):
        with pytest.raises(ProtocolError):
            make_mbuf().nic_deliver(64)

    def test_unaligned_mbuf_rejected(self):
        with pytest.raises(ProtocolError):
            Mbuf(index=0, address=100, size=256)


class TestMempool:
    def make(self, capacity=4) -> Mempool:
        return Mempool(AddressSpace(), "pool", capacity, 256)

    def test_alloc_until_exhaustion(self):
        pool = self.make(capacity=2)
        assert pool.alloc() is not None
        assert pool.alloc() is not None
        assert pool.alloc() is None
        assert pool.available == 0
        assert pool.in_flight == 2

    def test_free_returns_to_pool(self):
        pool = self.make()
        m = pool.alloc()
        m.give_to_nic()
        m.nic_deliver(64)
        pool.free(m)
        assert pool.available == pool.capacity
        assert m.state is MbufState.FREE

    def test_foreign_mbuf_rejected(self):
        pool = self.make()
        other = Mbuf(index=0, address=1 << 20, size=256)
        with pytest.raises(ProtocolError):
            pool.free(other)

    def test_buffers_are_disjoint_and_inside_region(self):
        pool = self.make(capacity=8)
        seen = set()
        for i in range(8):
            blocks = set(pool.mbuf(i).blocks)
            assert not blocks & seen
            seen |= blocks
            assert all(pool.region.contains_block(b) for b in blocks)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Mempool(AddressSpace(), "p", 0, 256)
        with pytest.raises(ConfigError):
            Mempool(AddressSpace(), "p", 4, 100)


class TestDataplane:
    def make(self, sweeper=True, pool=64, policy="ddio") -> Dataplane:
        system = make_tiny_system()
        return Dataplane(
            system,
            DataplaneConfig(
                burst_size=8,
                pool_capacity=pool,
                packet_bytes=256,
                sweeper_enabled=sweeper,
                policy=policy,
            ),
        )

    def test_receive_process_recycle_loop(self):
        dp = self.make()
        handled = dp.run(100)
        assert handled == 100
        assert dp.stats.delivered == 100
        assert dp.stats.relinquished == 100
        assert dp.stats.recycled == 100
        assert dp.pool.available == dp.pool.capacity

    def test_pool_exhaustion_drops(self):
        dp = self.make(pool=8)
        dropped = dp.nic_receive(12)
        assert dropped == 4
        assert dp.drops == 4

    def test_rx_burst_respects_limit(self):
        dp = self.make()
        dp.nic_receive(20)
        burst = dp.rx_burst()
        assert len(burst) == 8
        assert len(dp.rx_burst(4)) == 4

    def test_sweeper_stack_produces_no_consumed_evictions(self):
        dp = self.make(sweeper=True, pool=64)
        dp.run(3000)
        per = dp.hier.traffic.get(MemCategory.RX_EVCT)
        assert per == 0 or per / 3000 < 0.05

    def test_baseline_stack_leaks(self):
        dp = self.make(sweeper=False, pool=64)
        dp.run(3000)
        assert dp.hier.traffic.get(MemCategory.RX_EVCT) / 3000 > 0.5

    def test_reply_posts_and_nic_reads(self):
        dp = self.make()
        dp.nic_receive(1)
        mbuf = dp.rx_burst()[0] if False else dp.rx_burst(1).mbufs[0]
        dp.read_packet(mbuf)
        dp.reply(mbuf, 64)
        assert dp.nic.transmissions == 1
        dp.recycle(mbuf)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DataplaneConfig(burst_size=0)
        dp = self.make()
        with pytest.raises(ConfigError):
            dp.rx_burst(0)
        dp.nic_receive(1)
        m = dp.rx_burst(1).mbufs[0]
        with pytest.raises(ConfigError):
            dp.reply(m, 0)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(
        st.sampled_from(["deliver", "read", "relinquish", "recycle"]),
        max_size=30,
    )
)
def test_mbuf_lifecycle_never_corrupts_state(ops):
    """Property: arbitrary op sequences either follow the lifecycle or
    raise ProtocolError; the mbuf never enters an undefined state."""
    m = make_mbuf()
    for op in ops:
        try:
            if op == "deliver":
                m.give_to_nic()
                m.nic_deliver(64)
            elif op == "read":
                m.app_read()
            elif op == "relinquish":
                m.relinquish()
            elif op == "recycle":
                m.recycle(require_relinquish=True)
        except ProtocolError:
            pass
        assert m.state in MbufState
