"""Tests for the bank-level DDR4 timing model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mem.banked import BankedDramModel, DdrTiming, measure_sustained_bandwidth
from repro.mem.dram import DramModel
from repro.params import MemoryParams


def make_model(channels=4) -> BankedDramModel:
    return BankedDramModel(MemoryParams(num_channels=channels))


class TestAddressMapping:
    def test_sequential_blocks_stripe_channels(self):
        m = make_model(channels=4)
        channels = [m.map_block(b)[0] for b in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_row_groups_share_bank_and_row(self):
        m = make_model(channels=1)
        c0, b0, r0 = m.map_block(0)
        c1, b1, r1 = m.map_block(127)  # same 128-block row group
        assert (b0, r0) == (b1, r1)
        _, b2, _ = m.map_block(128)  # next group -> next bank
        assert b2 != b0

    def test_banks_wrap_to_next_row(self):
        m = make_model(channels=1)
        group_span = m.BLOCKS_PER_ROW * m.banks_per_channel
        _, bank_a, row_a = m.map_block(0)
        _, bank_b, row_b = m.map_block(group_span)
        assert bank_a == bank_b
        assert row_b == row_a + 1


class TestTiming:
    def test_first_access_is_row_miss(self):
        m = make_model()
        lat = m.access(0, now_cycles=0.0)
        t = m.timing
        expected = t.row_miss_cycles + t.tBURST + t.frontend_cycles
        assert lat == pytest.approx(expected)
        assert m.row_misses == 1

    def test_same_row_access_is_hit(self):
        m = make_model()
        m.access(0, now_cycles=0.0)
        m.reset_stats()
        m.access(4, now_cycles=1000.0)  # same channel, same row group
        assert m.row_hits == 1

    def test_different_row_same_bank_conflicts(self):
        m = make_model(channels=1)
        group_span = m.BLOCKS_PER_ROW * m.banks_per_channel
        m.access(0, now_cycles=0.0)
        m.access(group_span, now_cycles=10_000.0)
        assert m.row_conflicts == 1

    def test_conflict_costs_more_than_hit(self):
        m = make_model(channels=1)
        group_span = m.BLOCKS_PER_ROW * m.banks_per_channel
        m.access(0, now_cycles=0.0)
        hit = m.access(1, now_cycles=50_000.0)
        conflict = m.access(group_span, now_cycles=100_000.0)
        assert conflict > hit

    def test_back_to_back_same_channel_queue(self):
        m = make_model(channels=1)
        first = m.access(0, now_cycles=0.0)
        second = m.access(0, now_cycles=0.0)
        assert second > first  # serialized behind the bus/bank

    def test_bank_parallelism_overlaps(self):
        """Two banks on one channel overlap better than one bank."""
        same_bank = make_model(channels=1)
        a = same_bank.access(0, 0.0)
        group_span = (
            same_bank.BLOCKS_PER_ROW * same_bank.banks_per_channel
        )
        b = same_bank.access(group_span, 0.0)  # same bank, conflict
        two_banks = make_model(channels=1)
        c = two_banks.access(0, 0.0)
        d = two_banks.access(two_banks.BLOCKS_PER_ROW, 0.0)  # other bank
        assert (c + d) < (a + b)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DdrTiming(tCL=0)
        m = make_model()
        with pytest.raises(ConfigError):
            m.access(0, now_cycles=-1.0)
        with pytest.raises(ConfigError):
            m.mean_read_latency()


class TestBandwidth:
    def test_sequential_beats_random(self):
        seq = measure_sustained_bandwidth(make_model(), "sequential",
                                          num_accesses=5000)
        rnd = measure_sustained_bandwidth(make_model(), "random",
                                          num_accesses=5000)
        assert seq > rnd

    def test_random_efficiency_matches_closed_form_ballpark(self):
        """The closed-form model's efficiency=0.6 should sit in the band
        the banked model actually achieves for random traffic."""
        params = MemoryParams(num_channels=4)
        rnd = measure_sustained_bandwidth(
            BankedDramModel(params), "random", num_accesses=20000
        )
        efficiency = rnd / params.peak_bandwidth_gbps
        assert 0.3 < efficiency < 0.95

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigError):
            measure_sustained_bandwidth(make_model(), "strided")


class TestLoadedLatencyAgreement:
    def test_latency_grows_with_load_like_the_curve(self):
        """Both DRAM models must agree on the qualitative load-latency
        relationship Figure 6 depends on."""
        def mean_latency(gap_cycles):
            m = make_model()
            rng = np.random.default_rng(3)
            blocks = rng.integers(0, 1 << 26, size=4000)
            now = 0.0
            for b in blocks:
                m.access(int(b), now)
                now += gap_cycles
            return m.mean_read_latency()

        light = mean_latency(gap_cycles=200.0)
        heavy = mean_latency(gap_cycles=8.0)
        assert heavy > light
        curve = DramModel(MemoryParams(num_channels=4), freq_ghz=3.2)
        assert curve.avg_latency_cycles(40.0) > curve.avg_latency_cycles(5.0)

    def test_row_hit_rate_reported(self):
        m = make_model()
        for b in range(100):
            m.access(b // 4, now_cycles=b * 1000.0)
        assert 0.0 <= m.row_hit_rate() <= 1.0
        assert m.accesses == 100
