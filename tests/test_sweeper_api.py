"""Unit tests for the Sweeper relinquish/clsweep API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import CacheHierarchy
from repro.core.api import Sweeper
from repro.errors import ConfigError, SweepPermissionError
from repro.mem.layout import RegionKind
from repro.params import CACHE_BLOCK_BYTES

from tests.conftest import make_tiny_system

RX = RegionKind.RX_BUFFER


@pytest.fixture
def hier() -> CacheHierarchy:
    return CacheHierarchy(make_tiny_system())


class TestRelinquish:
    def test_sweeps_every_block_of_the_buffer(self, hier):
        sweeper = Sweeper(hier)
        for b in range(16, 20):
            hier.nic_llc_write(0, b, RX)
        issued = sweeper.relinquish(0, 16 * CACHE_BLOCK_BYTES, 4 * CACHE_BLOCK_BYTES)
        assert issued == 4
        for b in range(16, 20):
            assert not hier.llc.contains(b)

    def test_unaligned_range_covers_all_touched_blocks(self, hier):
        sweeper = Sweeper(hier)
        # 100..300 touches blocks 1..4
        issued = sweeper.relinquish(0, 100, 200)
        assert issued == 4
        assert sweeper.stats.clsweep_instructions == 4

    def test_single_byte_is_one_clsweep(self, hier):
        sweeper = Sweeper(hier)
        assert sweeper.relinquish(0, 64, 1) == 1

    def test_relinquish_blocks_hot_path(self, hier):
        sweeper = Sweeper(hier)
        for b in range(8, 12):
            hier.nic_llc_write(0, b, RX)
        assert sweeper.relinquish_blocks(0, range(8, 12)) == 4
        assert sweeper.stats.relinquish_calls == 1
        assert sweeper.stats.lines_dropped == 4

    def test_validation(self, hier):
        sweeper = Sweeper(hier)
        with pytest.raises(ConfigError):
            sweeper.relinquish(0, 0, 0)
        with pytest.raises(ConfigError):
            sweeper.relinquish(0, -64, 64)

    @given(st.integers(0, 10_000), st.integers(1, 4096))
    @settings(max_examples=60, deadline=None)
    def test_clsweep_count_covers_exact_block_span(self, address, size):
        hier = CacheHierarchy(make_tiny_system())
        sweeper = Sweeper(hier)
        issued = sweeper.relinquish(0, address, size)
        first = address // CACHE_BLOCK_BYTES
        last = (address + size - 1) // CACHE_BLOCK_BYTES
        assert issued == last - first + 1


class TestDisabled:
    def test_disabled_sweeper_is_noop(self, hier):
        sweeper = Sweeper(hier, enabled=False)
        hier.nic_llc_write(0, 5, RX)
        assert sweeper.relinquish(0, 5 * 64, 64) == 0
        assert sweeper.relinquish_blocks(0, range(5, 6)) == 0
        assert hier.llc.contains(5)
        assert sweeper.stats.clsweep_instructions == 0

    def test_disabled_clsweep_returns_zero(self, hier):
        assert Sweeper(hier, enabled=False).clsweep(0, 5) == 0


class TestPermission:
    def test_clsweep_requires_syscall_when_enforced(self, hier):
        sweeper = Sweeper(hier, require_permission=True)
        assert not sweeper.permission_granted
        with pytest.raises(SweepPermissionError):
            sweeper.clsweep(0, 5)
        sweeper.grant_permission()
        sweeper.clsweep(0, 5)  # no longer raises

    def test_permission_not_required_by_default(self, hier):
        assert Sweeper(hier).permission_granted

    def test_stats_reset(self, hier):
        sweeper = Sweeper(hier)
        sweeper.relinquish(0, 0, 256)
        sweeper.stats.reset()
        assert sweeper.stats.clsweep_instructions == 0
        assert sweeper.stats.relinquish_calls == 0
