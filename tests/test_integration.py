"""Cross-module integration tests: the full public-API request path and
the ablations DESIGN.md calls out."""

import pytest

from repro import (
    KvsParams,
    KvsWorkload,
    MemCategory,
    ServiceProfile,
    SystemConfig,
    TraceConfig,
    TraceSimulator,
    perf_at_load,
    solve_peak_throughput,
)
from repro.engine.tracer import TraceSimulator as TracerClass

from tests.conftest import make_tiny_kvs, make_tiny_l3fwd, make_tiny_system


def small_cfg(**kwargs):
    defaults = dict(
        system=make_tiny_system(),
        workload=make_tiny_kvs(),
        policy="ddio",
        warmup_requests=2500,
        measure_requests=1500,
    )
    defaults.update(kwargs)
    return TraceConfig(**defaults)


class TestQuickstartPath:
    """The README quickstart, executed as a test."""

    def test_public_api_end_to_end(self):
        system = (
            SystemConfig()
            .scaled(0.1)
            .with_nic(ddio_ways=2, rx_buffers_per_core=128, packet_bytes=512)
        )
        workload = KvsWorkload(KvsParams(item_bytes=512).scaled(0.05))
        cfg = TraceConfig(
            system=system, workload=workload, policy="ddio", sweeper=True,
            warmup_requests=2000, measure_requests=1000,
        )
        trace = TraceSimulator(cfg).run()
        profile = ServiceProfile.from_trace(trace)
        peak = solve_peak_throughput(profile, system)
        assert peak.throughput_mrps > 0
        assert trace.per_request()[MemCategory.RX_EVCT] < 0.5
        mid = perf_at_load(profile, system, 0.5 * peak.throughput_mrps)
        assert mid.mem_latency_cycles <= peak.mem_latency_cycles


class TestSweepTimingAblation:
    """Sweeping at consume-time vs never (DESIGN.md ablation): the
    steady-state RX footprint in the LLC shrinks when swept."""

    def test_llc_rx_occupancy_drops_with_sweeper(self):
        from repro.mem.layout import RegionKind

        base = TracerClass(small_cfg(sweeper=False)).run()
        swept = TracerClass(small_cfg(sweeper=True)).run()
        assert (
            swept.llc_occupancy_by_kind[RegionKind.RX_BUFFER]
            < 0.3 * max(base.llc_occupancy_by_kind[RegionKind.RX_BUFFER], 1)
        )


class TestTxSweepAblation:
    """CPU-driven relinquish vs NIC-driven TX sweeping (§V-D)."""

    def test_both_mechanisms_remove_consumed_buffers(self):
        cpu_swept = TracerClass(small_cfg(sweeper=True)).run()
        nic_swept = TracerClass(
            small_cfg(workload=make_tiny_l3fwd(zero_copy=True), sweeper=True)
        ).run()
        assert cpu_swept.sweep_instructions > 0 and cpu_swept.nic_sweeps == 0
        assert nic_swept.nic_sweeps > 0 and nic_swept.sweep_instructions == 0
        for result in (cpu_swept, nic_swept):
            assert result.per_request()[MemCategory.RX_EVCT] < 0.3

    def test_tx_buffer_sweeping_removes_tx_evictions(self):
        base = TracerClass(small_cfg(sweeper=False)).run()
        swept = TracerClass(small_cfg(sweeper=True, nic_tx_sweep=True)).run()
        assert (
            swept.per_request()[MemCategory.TX_EVCT]
            <= base.per_request()[MemCategory.TX_EVCT]
        )
        assert swept.nic_sweeps > 0


class TestReplacementAblation:
    """LRU vs random LLC replacement (DESIGN.md ablation)."""

    def test_random_replacement_softens_the_capacity_cliff(self):
        # Ring slightly larger than DDIO capacity: LRU cycling misses
        # everything; random keeps a proportional fraction resident.
        def leak(replacement):
            system = make_tiny_system(
                llc_replacement=replacement, rx_buffers=96, ddio_ways=4
            )
            r = TracerClass(small_cfg(system=system)).run()
            return r.per_request()[MemCategory.RX_EVCT]

        assert leak("random") <= leak("lru") + 0.2


class TestRunawayBufferAblation:
    """§VI-C: with clean victim fills enabled, prematurely evicted
    buffers park in non-DDIO ways and soak up extra LLC space."""

    def test_clean_fill_parks_rx_blocks_outside_ddio_ways(self):
        from repro.mem.layout import RegionKind

        cfg = small_cfg(workload=make_tiny_l3fwd(), queued_depth=24)
        sim = TracerClass(cfg)
        sim.hier.victim_fill_clean = True
        result = sim.run()
        rx_resident = result.llc_occupancy_by_kind[RegionKind.RX_BUFFER]
        ddio_capacity = sim.hier.llc.num_sets * len(sim.hier.ddio_way_mask)
        assert rx_resident > ddio_capacity  # spilled beyond the DDIO ways


class TestScaledConsistency:
    """The same experiment at two scales tells the same story."""

    @pytest.mark.parametrize("sweeper", [False, True])
    def test_rx_leak_rate_scale_invariant(self, sweeper):
        def leak_per_request(rx_buffers, llc_sets):
            system = make_tiny_system(rx_buffers=rx_buffers, llc_sets=llc_sets)
            r = TracerClass(small_cfg(system=system, sweeper=sweeper,
                                      workload=make_tiny_kvs())).run()
            return r.per_request()[MemCategory.RX_EVCT]

        small = leak_per_request(64, 64)
        double = leak_per_request(128, 128)
        assert double == pytest.approx(small, abs=0.6)
