"""Tests for the §V-B page-recycling privacy model.

The central scenario: process A writes a secret; the OS reclaims the
page for process B; B clsweeps the zeroed blocks and reads. A vulnerable
zeroing method (cached, no CLWB) leaks the secret; both mitigations the
paper proposes keep it hidden.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pageguard import (
    FunctionalCache,
    FunctionalMemory,
    OsPageManager,
    ZeroingMethod,
)
from repro.errors import ConfigError, SweepPermissionError

SECRET = 0xDEAD


def make_world(blocks_per_page=4):
    cache = FunctionalCache(FunctionalMemory())
    return OsPageManager(cache=cache, blocks_per_page=blocks_per_page)


class TestFunctionalCache:
    def test_write_then_read(self):
        c = FunctionalCache(FunctionalMemory())
        c.write(0, 42)
        assert c.read(0) == 42
        assert c.is_dirty(0)

    def test_clwb_persists_and_keeps_line(self):
        c = FunctionalCache(FunctionalMemory())
        c.write(0, 42)
        c.clwb(0)
        assert c.memory.read(0) == 42
        assert c.is_cached(0)
        assert not c.is_dirty(0)

    def test_clflush_persists_and_invalidates(self):
        c = FunctionalCache(FunctionalMemory())
        c.write(0, 42)
        c.clflush(0)
        assert c.memory.read(0) == 42
        assert not c.is_cached(0)

    def test_clsweep_discards_dirty_data(self):
        c = FunctionalCache(FunctionalMemory())
        c.memory.write(0, 7)
        c.write(0, 42)
        c.clsweep(0)
        assert c.read(0) == 7  # dirty 42 was dropped, memory wins

    def test_read_caches_clean_copy(self):
        c = FunctionalCache(FunctionalMemory())
        c.memory.write(0, 9)
        assert c.read(0) == 9
        assert c.is_cached(0)
        assert not c.is_dirty(0)


class TestPrivacyBreach:
    def _scenario(self, method: ZeroingMethod) -> int:
        """Return what the new owner reads after reclaim + clsweep."""
        os = make_world()
        os.create_page(0, owner=1)
        os.request_clsweep_permission(2)
        # Previous owner writes a secret; it reaches DRAM via writeback.
        os.process_write(1, 0, offset=0, value=SECRET)
        os.cache.clwb(os.pages[0].start_block)
        os.reclaim_page(0, new_owner=2, method=method)
        os.process_clsweep(2, 0, offset=0)
        return os.process_read(2, 0, offset=0)

    def test_cached_zeroing_without_clwb_leaks_the_secret(self):
        assert self._scenario(ZeroingMethod.CACHED) == SECRET

    def test_clwb_mitigation_hides_the_secret(self):
        assert self._scenario(ZeroingMethod.CACHED_CLWB) == 0

    def test_dma_zeroing_hides_the_secret(self):
        assert self._scenario(ZeroingMethod.DMA_TO_MEMORY) == 0

    def test_kernel_policy_selects_clwb_for_clsweep_users(self):
        os = make_world()
        os.request_clsweep_permission(2)
        assert os.safe_method_for(2) is ZeroingMethod.CACHED_CLWB
        assert os.safe_method_for(3) is ZeroingMethod.CACHED


class TestOwnershipAndPermissions:
    def test_non_owner_cannot_access(self):
        os = make_world()
        os.create_page(0, owner=1)
        with pytest.raises(ConfigError):
            os.process_read(2, 0, 0)
        with pytest.raises(ConfigError):
            os.process_write(2, 0, 0, 1)

    def test_clsweep_without_permission_rejected(self):
        os = make_world()
        os.create_page(0, owner=1)
        with pytest.raises(SweepPermissionError):
            os.process_clsweep(1, 0, 0)

    def test_duplicate_page_rejected(self):
        os = make_world()
        os.create_page(0, owner=1)
        with pytest.raises(ConfigError):
            os.create_page(0, owner=2)

    def test_reclaim_unknown_page_rejected(self):
        with pytest.raises(ConfigError):
            make_world().reclaim_page(9, new_owner=1)

    def test_reclaim_transfers_ownership(self):
        os = make_world()
        os.create_page(0, owner=1)
        os.reclaim_page(0, new_owner=2)
        os.process_write(2, 0, 0, 5)  # new owner may write
        with pytest.raises(ConfigError):
            os.process_write(1, 0, 0, 5)  # old owner may not


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 0xFFFF)), max_size=12
    ),
    sweep_offsets=st.lists(st.integers(0, 3), max_size=8),
)
def test_safe_reclaim_never_leaks_any_prior_value(writes, sweep_offsets):
    """Property: after a CLWB-zeroed reclaim, no clsweep sequence by the
    new owner can surface any value the previous owner wrote."""
    os = make_world()
    os.create_page(0, owner=1)
    os.request_clsweep_permission(2)
    for offset, value in writes:
        os.process_write(1, 0, offset, value)
    os.reclaim_page(0, new_owner=2, method=ZeroingMethod.CACHED_CLWB)
    for offset in sweep_offsets:
        os.process_clsweep(2, 0, offset)
    for offset in range(4):
        assert os.process_read(2, 0, offset) == 0
