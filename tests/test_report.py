"""Unit tests for report rendering."""

import pytest

from repro.errors import ConfigError
from repro.params import TABLE1
from repro.report.tables import (
    Table,
    format_breakdown,
    render_table1,
    series_to_lines,
)
from repro.traffic import MemCategory


class TestTable:
    def test_render_aligns_columns(self):
        t = Table(["a", "long_column"], title="T")
        t.add_row("x", 1.5)
        t.add_row("longer", 20)
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "long_column" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows same width

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row(3.14159)
        assert "3.14" in t.render()

    def test_row_arity_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ConfigError):
            t.add_row("only-one")

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigError):
            Table([])

    def test_str_is_render(self):
        t = Table(["a"])
        t.add_row(1)
        assert str(t) == t.render()


class TestBreakdownFormatting:
    def test_includes_significant_categories_only(self):
        b = {c: 0.0 for c in MemCategory}
        b[MemCategory.RX_EVCT] = 12.3
        b[MemCategory.CPU_RX_RD] = 0.001
        out = format_breakdown(b)
        assert "RX Evct=12.30" in out
        assert "CPU RX Rd" not in out

    def test_empty_breakdown(self):
        b = {c: 0.0 for c in MemCategory}
        assert format_breakdown(b) == "(no memory traffic)"


class TestTable1Rendering:
    def test_contains_all_components(self):
        out = render_table1(TABLE1)
        for token in ("CPU", "L1 caches", "L2 caches", "LLC", "NoC",
                      "Memory", "NIC"):
            assert token in out

    def test_reflects_configuration_changes(self):
        out = render_table1(TABLE1.with_memory(num_channels=8))
        assert "8 channels" in out


def test_series_to_lines():
    lines = series_to_lines("peak", [512, 1024], [10.0, 8.5])
    assert lines == ["peak: 512=10.00  1024=8.50"]
