"""Unit tests for the cache hierarchy and its coherence-ish semantics."""

import pytest

from repro.cache.hierarchy import AccessLevel, CacheHierarchy
from repro.errors import ConfigError
from repro.mem.layout import RegionKind
from repro.traffic import MemCategory

from tests.conftest import make_tiny_system

RX = RegionKind.RX_BUFFER
TX = RegionKind.TX_BUFFER
APP = RegionKind.APP


def make_hier(**kwargs) -> CacheHierarchy:
    return CacheHierarchy(make_tiny_system(**kwargs))


class TestCpuReadPath:
    def test_first_read_misses_to_memory_and_fills_l1_l2(self):
        h = make_hier()
        assert h.cpu_read(0, 100, APP) is AccessLevel.MEM
        assert h.traffic.get(MemCategory.CPU_OTHER_RD) == 1
        assert h.l1s[0].contains(100)
        assert h.l2s[0].contains(100)
        assert not h.llc.contains(100)  # non-inclusive: no LLC fill on miss

    def test_second_read_hits_l1(self):
        h = make_hier()
        h.cpu_read(0, 100, APP)
        assert h.cpu_read(0, 100, APP) is AccessLevel.L1
        assert h.traffic.total() == 1

    def test_read_miss_category_follows_kind(self):
        h = make_hier()
        h.cpu_read(0, 1, RX)
        h.cpu_read(0, 2, TX)
        h.cpu_read(0, 3, APP)
        assert h.traffic.get(MemCategory.CPU_RX_RD) == 1
        assert h.traffic.get(MemCategory.CPU_TX_RDWR) == 1
        assert h.traffic.get(MemCategory.CPU_OTHER_RD) == 1

    def test_llc_read_hit_retains_line(self):
        """Consumed-buffer mechanism: dirty RX lines stay parked in LLC."""
        h = make_hier()
        h.nic_llc_write(0, 100, RX)
        assert h.cpu_read(0, 100, RX) is AccessLevel.LLC
        assert h.llc.contains(100)
        assert h.llc.is_dirty(100)
        assert h.l1s[0].contains(100)
        assert h.traffic.total() == 0

    def test_cross_core_llc_hit(self):
        h = make_hier()
        h.nic_llc_write(0, 100, RX)
        assert h.cpu_read(1, 100, RX) is AccessLevel.LLC
        assert h.l1s[1].contains(100)


class TestCpuWritePath:
    def test_write_miss_is_rfo_read(self):
        h = make_hier()
        assert h.cpu_write(0, 50, TX) is AccessLevel.MEM
        assert h.traffic.get(MemCategory.CPU_TX_RDWR) == 1
        assert h.l1s[0].is_dirty(50)

    def test_write_hit_in_llc_takes_ownership(self):
        h = make_hier()
        h.nic_llc_write(0, 100, RX)
        assert h.cpu_write(0, 100, RX) is AccessLevel.LLC
        assert not h.llc.contains(100)
        assert h.l1s[0].is_dirty(100)

    def test_l1_write_hit_stays_local(self):
        h = make_hier()
        h.cpu_write(0, 50, APP)
        assert h.cpu_write(0, 50, APP) is AccessLevel.L1
        assert h.traffic.total() == 1  # only the initial RFO


class TestEvictionCascade:
    def test_dirty_data_flows_down_to_memory_writeback(self):
        """Write enough dirty blocks through one core that evictions
        cascade L1 -> L2 -> LLC -> memory, attributed to the kind."""
        h = make_hier()
        l2_blocks = h.l2s[0].params.num_blocks
        llc_blocks = h.llc.params.num_blocks
        total = (l2_blocks + llc_blocks) * 2
        for b in range(total):
            h.cpu_write(0, b, APP)
        assert h.traffic.get(MemCategory.OTHER_EVCT) > 0

    def test_clean_data_never_writes_back(self):
        h = make_hier()
        total = (h.l2s[0].params.num_blocks + h.llc.params.num_blocks) * 2
        for b in range(total):
            h.cpu_read(0, b, APP)
        for cat in (MemCategory.OTHER_EVCT, MemCategory.RX_EVCT, MemCategory.TX_EVCT):
            assert h.traffic.get(cat) == 0

    def test_clean_victims_dropped_by_default(self):
        h = make_hier()
        assert not h.victim_fill_clean
        # Stream reads through L2; clean victims must not allocate in LLC.
        total = h.l2s[0].params.num_blocks * 3
        for b in range(total):
            h.cpu_read(0, b, APP)
        assert h.llc.occupancy() == 0

    def test_clean_victim_fill_ablation(self):
        h = CacheHierarchy(make_tiny_system(), victim_fill_clean=True)
        total = h.l2s[0].params.num_blocks * 3
        for b in range(total):
            h.cpu_read(0, b, APP)
        assert h.llc.occupancy() > 0


class TestNicSide:
    def test_ddio_write_allocates_dirty_in_ddio_ways(self):
        h = make_hier(ddio_ways=2)
        h.nic_llc_write(0, 100, RX)
        assert h.llc.contains(100)
        assert h.llc.is_dirty(100)
        assert h.llc.way_of(100) in (0, 1)
        assert h.traffic.total() == 0

    def test_ddio_write_snoops_private_copies(self):
        h = make_hier()
        h.cpu_read(0, 100, RX)  # cached in L1/L2 (from memory)
        h.traffic.reset()
        h.nic_llc_write(0, 100, RX)
        assert not h.l1s[0].contains(100)
        assert not h.l2s[0].contains(100)
        assert h.traffic.total() == 0  # full-line overwrite: no writeback

    def test_ddio_thrash_writes_back_dirty_victims_as_rx_evct(self):
        h = make_hier(ddio_ways=1)
        ddio_capacity = h.llc.num_sets  # one way
        for b in range(ddio_capacity * 3):
            h.nic_llc_write(0, b, RX)
        assert h.traffic.get(MemCategory.RX_EVCT) >= ddio_capacity
        assert h.traffic.get(MemCategory.OTHER_EVCT) == 0

    def test_ddio_in_place_hit_outside_ddio_ways(self):
        h = make_hier(ddio_ways=2)
        h.set_core_fill_mask(0, [4, 5])
        # Park a dirty TX line in way 4/5 via an L2 eviction cascade.
        h.cpu_write(0, 7, TX)
        for b in range(64, 64 + h.l2s[0].params.num_blocks * 2):
            h.cpu_read(0, b, APP)
            h.cpu_write(0, b + 10000, APP)
        if h.llc.contains(7):
            way = h.llc.way_of(7)
            h.nic_llc_write(0, 7, TX)
            assert h.llc.way_of(7) == way  # updated in place, not moved

    def test_nic_probe_read_hit_no_traffic(self):
        h = make_hier()
        h.cpu_write(0, 50, TX)
        assert h.nic_probe_read(0, 50)
        assert h.traffic.get(MemCategory.NIC_TX_RD) == 0

    def test_nic_probe_read_miss_counts_tx_read_without_allocating(self):
        h = make_hier()
        assert not h.nic_probe_read(0, 50)
        assert h.traffic.get(MemCategory.NIC_TX_RD) == 1
        assert not h.llc.contains(50)

    def test_invalidate_discard_drops_dirty_silently(self):
        h = make_hier()
        h.cpu_write(0, 50, TX)
        assert h.invalidate_block(0, 50, discard_dirty=True)
        assert h.traffic.get(MemCategory.TX_EVCT) == 0
        assert not h.l1s[0].contains(50)

    def test_invalidate_flush_writes_back_dirty(self):
        h = make_hier()
        h.cpu_write(0, 50, TX)
        h.traffic.reset()
        assert h.invalidate_block(0, 50, discard_dirty=False)
        assert h.traffic.get(MemCategory.TX_EVCT) == 1

    def test_invalidate_clean_reports_false(self):
        h = make_hier()
        h.cpu_read(0, 50, APP)
        h.traffic.reset()
        assert not h.invalidate_block(0, 50, discard_dirty=False)
        assert h.traffic.total() == 0


class TestSweep:
    def test_sweep_drops_all_copies_without_writeback(self):
        h = make_hier()
        h.nic_llc_write(0, 100, RX)
        h.cpu_read(0, 100, RX)  # copies in L1, L2; dirty line in LLC
        h.traffic.reset()
        dropped = h.sweep_block(0, 100)
        assert dropped == 3
        assert not h.resident_anywhere(0, 100)
        assert h.traffic.total() == 0

    def test_sweep_absent_block_is_harmless(self):
        h = make_hier()
        assert h.sweep_block(0, 100) == 0

    def test_sweep_then_nic_write_causes_no_eviction(self):
        """The whole point: a swept slot absorbs the next packet free."""
        h = make_hier(ddio_ways=1)
        capacity = h.llc.num_sets
        for b in range(capacity):
            h.nic_llc_write(0, b, RX)
            h.cpu_read(0, b, RX)
            h.sweep_block(0, b)
        for b in range(capacity, 2 * capacity):
            h.nic_llc_write(0, b, RX)
        assert h.traffic.get(MemCategory.RX_EVCT) == 0


class TestConfiguration:
    def test_ddio_mask_validation(self):
        h = make_hier()
        with pytest.raises(ConfigError):
            h.set_ddio_way_mask([99])

    def test_core_fill_mask_validation_and_clear(self):
        h = make_hier()
        h.set_core_fill_mask(0, [0, 1])
        h.set_core_fill_mask(0, None)
        with pytest.raises(ConfigError):
            h.set_core_fill_mask(0, [12])

    def test_core_fill_mask_confines_victim_fills(self):
        h = make_hier()
        h.set_core_fill_mask(0, [11])
        total = h.l2s[0].params.num_blocks * 2
        for b in range(total):
            h.cpu_write(0, b, APP)
        for block in h.llc.resident_blocks():
            assert h.llc.way_of(block) == 11

    def test_reset_stats(self):
        h = make_hier()
        h.cpu_read(0, 1, APP)
        h.reset_stats()
        assert h.traffic.total() == 0
        assert h.l1s[0].stats.accesses == 0
