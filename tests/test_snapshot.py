"""Tests for warm-state snapshots (DESIGN.md §14) + pointcache fixes.

The core contract under test: a point whose measured window was forked
off a restored snapshot is bit-identical to one that re-simulated its
warmup, under both engines, serially and across workers. The satellite
pointcache bugfixes (in-generation ``.tmp`` GC, non-strict
``REPRO_CACHE_MAX_MB`` on the store path, prune racing a cache hit)
are covered here too.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle

import pytest

from repro.engine import pointcache, snapshot
from repro.engine.parallel import (
    PointSpec,
    last_run_dir,
    run_cached_spec,
    run_points,
    run_spec,
)
from repro.engine.tracer import TraceConfig, TraceSimulator
from repro.errors import ConfigError
from repro.experiments.common import (
    ExperimentSettings,
    kvs_system,
    kvs_workload,
    point_row,
    point_spec,
)
from repro.nic.arrivals import BurstProfile
from repro.sidechannel.observer import ObserverConfig

SCALE = 0.05
SETTINGS = ExperimentSettings(scale=SCALE, measure_multiplier=0.1)


def sweep_spec(label="p", measure_ways=None, seed=42, **overrides) -> PointSpec:
    """One point of a way-mask sweep: warmup shared, measure mask varies."""
    spec = point_spec(
        label,
        kvs_system(SCALE, 64, 4, 512),
        kvs_workload(0.02, 512),
        "ddio",
        settings=SETTINGS,
        seed=seed,
        measure_ddio_ways=measure_ways,
    )
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return spec


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pointcache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SNAPSHOTS", raising=False)
    snapshot.reset_counters()
    return tmp_path / "pointcache"


def strict_row(result):
    """point_row minus the fields that legitimately vary run to run."""
    row = point_row(result, SCALE)
    row.pop("sim_seconds")
    row.pop("from_cache")
    return row


def assert_bit_identical(a, b):
    assert strict_row(a) == strict_row(b)
    assert a.trace.traffic.counts == b.trace.traffic.counts
    assert a.trace.level_counts == b.trace.level_counts
    assert a.trace.cache_totals == b.trace.cache_totals
    assert a.trace.llc_occupancy_by_kind == b.trace.llc_occupancy_by_kind
    assert a.trace.drops == b.trace.drops
    assert a.trace.nic_sweeps == b.trace.nic_sweeps
    assert a.trace.cpu_work_cycles == b.trace.cpu_work_cycles


class TestWarmupFingerprint:
    def test_measure_knobs_share_fingerprint(self):
        base = sweep_spec()
        same_warmup = [
            sweep_spec(measure_ways=2),
            sweep_spec(measure_ways=4),
            sweep_spec(measure_requests=999),
            sweep_spec(label="other-label"),
        ]
        base_wfp = snapshot.warmup_fingerprint(base)
        for variant in same_warmup:
            assert snapshot.warmup_fingerprint(variant) == base_wfp
        # ... while the *point* fingerprints still split on those knobs
        # (except the label, which is presentation-only).
        point_fps = {
            pointcache.fingerprint(v) for v in (base, *same_warmup[:3])
        }
        assert len(point_fps) == 4

    def test_warmup_fields_split_fingerprint(self):
        base = sweep_spec()
        variants = [
            sweep_spec(seed=43),
            sweep_spec(sweeper=True),
            sweep_spec(nic_tx_sweep=True),
            sweep_spec(queued_depth=2),
            sweep_spec(warmup_requests=10),
            sweep_spec(burst=BurstProfile(low=1, high=9, window=16, seed=5)),
            point_spec(  # warmup-relevant: system-wide DDIO ways
                "p",
                kvs_system(SCALE, 64, 2, 512),
                kvs_workload(0.02, 512),
                "ddio",
                settings=SETTINGS,
            ),
            point_spec(  # different workload params
                "p",
                kvs_system(SCALE, 64, 4, 512),
                kvs_workload(0.02, 256),
                "ddio",
                settings=SETTINGS,
            ),
            point_spec(  # different policy
                "p",
                kvs_system(SCALE, 64, 4, 512),
                kvs_workload(0.02, 512),
                "dma",
                settings=SETTINGS,
            ),
        ]
        base_wfp = snapshot.warmup_fingerprint(base)
        wfps = [snapshot.warmup_fingerprint(v) for v in variants]
        assert all(wfp != base_wfp for wfp in wfps)
        assert len(set(wfps)) == len(wfps)

    def test_warmup_key_fields_all_appear_in_cache_key(self):
        # The point identity must subsume the warmup identity: a field
        # that splits warmup fingerprints must split point fingerprints
        # too, or two different simulations could share a cached result.
        base = sweep_spec()
        for variant in (
            sweep_spec(seed=43),
            sweep_spec(sweeper=True),
            sweep_spec(warmup_requests=10),
            sweep_spec(burst=BurstProfile(low=1, high=9, window=16, seed=5)),
        ):
            assert variant.warmup_key() != base.warmup_key()
            assert variant.cache_key() != base.cache_key()

    def test_leader_order_puts_group_leaders_first(
        self, cache_dir, monkeypatch
    ):
        specs = [
            sweep_spec("lone", seed=99),
            sweep_spec("a", measure_ways=2),
            sweep_spec("b", measure_ways=3),
            sweep_spec("c", measure_ways=4),
        ]
        groups = snapshot.warmup_groups(specs)
        assert list(groups.values()) == [[1, 2, 3]]
        assert snapshot.leader_order(specs) == [0, 1, 2, 3]
        # Reversed: the group leader (now index 0's "c") must move ahead
        # of its followers while non-group specs keep their slots.
        assert snapshot.leader_order(list(reversed(specs))) == [0, 3, 1, 2]
        # Snapshots off -> no grouping -> original order.
        monkeypatch.setenv("REPRO_SNAPSHOTS", "0")
        assert snapshot.warmup_groups(specs) == {}
        assert snapshot.leader_order(list(reversed(specs))) == [0, 1, 2, 3]


@pytest.mark.parametrize("engine", ["object", "batch"])
class TestBitIdentity:
    def _baseline(self, specs, monkeypatch):
        monkeypatch.setenv("REPRO_SNAPSHOTS", "0")
        baseline = [run_spec(s) for s in specs]
        monkeypatch.delenv("REPRO_SNAPSHOTS")
        assert all(not r.warm_restored for r in baseline)
        return baseline

    def test_serial_sweep_restores_bit_identically(
        self, cache_dir, monkeypatch, engine
    ):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        specs = [
            sweep_spec(f"ways {w}", measure_ways=w) for w in (2, 3, 4)
        ]
        baseline = self._baseline(specs, monkeypatch)
        results = run_points(specs, max_workers=1)
        assert [r.warm_restored for r in results] == [False, True, True]
        assert snapshot.counters["restored"] == 2
        assert snapshot.counters["captured"] == 1
        assert snapshot.counters["fallbacks"] == 0
        assert len(list(cache_dir.rglob("*.snap"))) == 1
        for fresh, restored in zip(baseline, results):
            assert_bit_identical(fresh, restored)

    def test_second_run_restores_after_measure_edit(
        self, cache_dir, monkeypatch, engine
    ):
        # The incremental-sweep story: re-running after a measure-only
        # edit misses the point cache but restores the warmup snapshot.
        monkeypatch.setenv("REPRO_ENGINE", engine)
        run_cached_spec(sweep_spec(measure_ways=2))
        edited = sweep_spec(measure_ways=2, measure_requests=600)
        result = run_cached_spec(edited)
        assert not result.from_cache
        assert result.warm_restored
        monkeypatch.setenv("REPRO_SNAPSHOTS", "0")
        assert_bit_identical(run_spec(edited), result)

    def test_burst_points_restore_exactly(self, cache_dir, monkeypatch, engine):
        monkeypatch.setenv("REPRO_ENGINE", engine)
        burst = BurstProfile(low=1, high=6, window=16, seed=5)
        specs = [
            sweep_spec("b1", burst=burst),
            sweep_spec("b2", burst=burst, measure_requests=600),
        ]
        baseline = self._baseline(specs, monkeypatch)
        results = run_points(specs, max_workers=1)
        assert results[1].warm_restored
        for fresh, restored in zip(baseline, results):
            assert_bit_identical(fresh, restored)


class TestParallelRestores:
    def test_workers_share_one_warmup(self, cache_dir, monkeypatch):
        specs = [
            sweep_spec(f"ways {w}", measure_ways=w) for w in (2, 3, 4)
        ]
        monkeypatch.setenv("REPRO_SNAPSHOTS", "0")
        baseline = [run_spec(s) for s in specs]
        monkeypatch.delenv("REPRO_SNAPSHOTS")
        results = run_points(specs, max_workers=2)
        # Followers were gated on the leader, so both restored — the
        # counters live in the worker processes, so assert through the
        # manifest instead.
        manifest = json.loads(
            (last_run_dir() / "manifest.json").read_text()
        )
        restored = [p["warm_restored"] for p in manifest["points"]]
        assert restored == [False, True, True]
        wfps = {p["warmup_fingerprint"] for p in manifest["points"]}
        assert len(wfps) == 1 and None not in wfps
        for fresh, restored_result in zip(baseline, results):
            assert_bit_identical(fresh, restored_result)


class TestObserverCarveOut:
    def test_observer_points_opt_out(self, cache_dir, monkeypatch):
        spec = sweep_spec(
            observer=ObserverConfig(sets=4, period=8),
            measure_requests=600,
        )
        assert not snapshot.eligible(spec)
        result = run_spec(spec)
        assert not result.warm_restored
        assert list(cache_dir.rglob("*.snap")) == []
        # And an observer point never *consumes* a sibling's snapshot:
        # running the observer-less sibling first stores one, the
        # observer spec keys off a different (None) fingerprint path.
        run_spec(sweep_spec(measure_requests=600))
        assert len(list(cache_dir.rglob("*.snap"))) == 1
        again = run_spec(spec)
        assert not again.warm_restored
        assert_bit_identical(result, again)


class TestSnapshotDurability:
    def test_crash_during_write_leaves_complete_or_miss(
        self, cache_dir, monkeypatch
    ):
        wfp = snapshot.warmup_fingerprint(sweep_spec())
        state = {"version": 1, "payload": b"x" * 1024}

        real_replace = os.replace

        def crash(src, dst):
            raise OSError("simulated crash mid-rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError):
            snapshot.store_state(wfp, "object", state)
        monkeypatch.setattr(os, "replace", real_replace)
        # Reader sees a miss, never a partial file under the final name.
        assert snapshot.load_state(wfp, "object") is None
        assert list(cache_dir.rglob("*.snap")) == []
        assert list(cache_dir.rglob("*.tmp")) == []  # temp cleaned up

    def test_truncated_snapshot_falls_back_then_heals(
        self, cache_dir, monkeypatch
    ):
        leader = sweep_spec(measure_ways=2)
        follower = sweep_spec(measure_ways=3)
        monkeypatch.setenv("REPRO_SNAPSHOTS", "0")
        fresh = run_spec(follower)
        monkeypatch.delenv("REPRO_SNAPSHOTS")
        run_spec(leader)
        (snap,) = list(cache_dir.rglob("*.snap"))
        snap.write_bytes(snap.read_bytes()[: snap.stat().st_size // 2])
        healed = run_spec(follower)
        # The truncated blob is a miss -> normal warmup (bit-identical)
        # and a fresh capture overwrites the damage.
        assert not healed.warm_restored
        assert_bit_identical(fresh, healed)
        third = run_spec(sweep_spec(measure_ways=4))
        assert third.warm_restored

    def test_restore_validation_is_all_or_nothing(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "object")
        spec = sweep_spec()
        run_spec(spec)  # stores a snapshot
        wfp = snapshot.warmup_fingerprint(spec)
        state = snapshot.load_state(wfp, "object")
        assert state is not None

        def fresh_sim():
            return TraceSimulator(
                TraceConfig(
                    system=spec.system,
                    workload=pickle.loads(pickle.dumps(spec.workload)),
                    policy=spec.policy,
                    seed=spec.seed,
                    engine="object",
                )
            )

        assert fresh_sim().restore_warm_state(
            pickle.loads(pickle.dumps(state))
        )
        for tamper in (
            {"version": 999},
            {"engine": "batch"},
            {"rx": []},
            {"caches": []},
            {"ddio_way_mask": (0, 99)},
            {"workload": object()},
        ):
            bad = dict(pickle.loads(pickle.dumps(state)))
            bad.update(tamper)
            sim = fresh_sim()
            before = sim.hier.llc.occupancy()
            assert not sim.restore_warm_state(bad)
            assert sim.hier.llc.occupancy() == before  # nothing mutated

    def test_measure_ddio_ways_validated_at_construction(self):
        with pytest.raises(ConfigError):
            TraceSimulator(
                TraceConfig(
                    system=kvs_system(SCALE, 64, 4, 512),
                    workload=kvs_workload(0.02, 512),
                    policy="dma",  # not DDIO-family
                    measure_ddio_ways=2,
                )
            )
        with pytest.raises(ConfigError):
            TraceSimulator(
                TraceConfig(
                    system=kvs_system(SCALE, 64, 4, 512),
                    workload=kvs_workload(0.02, 512),
                    policy="ddio",
                    measure_ddio_ways=99,  # > LLC associativity
                )
            )


class TestPointcacheFixes:
    def test_gc_collects_in_generation_tmp_orphans(self, cache_dir):
        # Regression: store()'s mkstemp leaves crash orphans *inside*
        # the generation dir; gc() used to sweep only the cache root.
        pointcache.store("a" * 8, b"x" * 100)
        gen = pointcache.generation_dir()
        old_orphan = gen / "dead-writer.tmp"
        old_orphan.write_bytes(b"x" * 50)
        os.utime(old_orphan, (100, 100))
        snap_dir = gen / snapshot.SNAP_SUBDIR
        snap_dir.mkdir()
        old_snap_orphan = snap_dir / "dead-snap-writer.tmp"
        old_snap_orphan.write_bytes(b"x" * 50)
        os.utime(old_snap_orphan, (100, 100))
        live_writer = gen / "live-writer.tmp"
        live_writer.write_bytes(b"x" * 50)  # fresh mtime: maybe mid-dump

        report = pointcache.gc()
        assert report["removed_stray_files"] == 2
        assert not old_orphan.exists()
        assert not old_snap_orphan.exists()
        assert live_writer.exists()  # age guard: never race a live writer
        assert pointcache.load("a" * 8) is not None

    def test_tmp_and_snap_bytes_in_size_accounting(self, cache_dir):
        pointcache.store("a" * 8, b"x" * 100)
        gen = pointcache.generation_dir()
        (gen / "orphan.tmp").write_bytes(b"x" * 500)
        snapshot.store_state("f" * 8, "object", {"version": 1, "blob": b"y"})
        stats = pointcache.stats()
        assert stats["tmp_bytes"] == 500
        assert stats["total_entries"] == 2  # the pickle + the snapshot
        assert stats["total_bytes"] >= 500
        current = pointcache.code_salt()[: pointcache.GENERATION_CHARS]
        assert stats["generations"][current]["entries"] == 2

    def test_snapshots_pruned_lru_with_entries(self, cache_dir, monkeypatch):
        snapshot.store_state("a" * 8, "object", {"version": 1, "b": b"x" * 2000})
        path = snapshot.snapshot_path("a" * 8, "object")
        os.utime(path, (100, 100))
        pointcache.store("b" * 8, b"x" * 2000)
        os.utime(pointcache._entry_path("b" * 8), (200, 200))
        removed = pointcache.prune(3000)
        assert removed == [path]  # oldest (the snapshot) evicted first

    def test_malformed_max_mb_degrades_on_store_path(
        self, cache_dir, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "not-a-number")
        with pytest.raises(ConfigError):
            pointcache.cache_max_bytes()
        assert pointcache.cache_max_bytes(strict=False) is None
        # A fully simulated point must not be lost to the bad knob.
        pointcache.store("a" * 8, b"x" * 10)
        assert pointcache.load("a" * 8) is not None

    def test_malformed_max_mb_fails_run_points_at_startup(
        self, cache_dir, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "-3")
        with pytest.raises(ConfigError):
            run_points([sweep_spec()], max_workers=1)

    def test_prune_skips_entries_touched_since_scan(
        self, cache_dir, monkeypatch
    ):
        pointcache.store("a" * 8, b"x" * 2000)
        pointcache.store("b" * 8, b"x" * 2000)
        a = pointcache._entry_path("a" * 8)
        b = pointcache._entry_path("b" * 8)
        os.utime(a, (100, 100))
        os.utime(b, (200, 200))
        # Simulate a cache hit landing mid-prune: the scan saw a as the
        # LRU victim, but a load refreshed it before the unlink.
        stale_view = [(a, 100.0, 2000), (b, 200.0, 2000)]
        monkeypatch.setattr(pointcache, "_entries", lambda: stale_view)
        os.utime(a)  # the concurrent hit
        removed = pointcache.prune(3000)
        assert removed == [b]  # b is now the true LRU entry
        assert a.exists()
