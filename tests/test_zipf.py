"""Unit and property tests for the Zipf key-popularity sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.workloads.zipf import ZipfGenerator


class TestDistribution:
    def test_samples_within_range(self):
        z = ZipfGenerator(100, rng=np.random.default_rng(1))
        samples = z.sample_many(5000)
        assert samples.min() >= 0
        assert samples.max() < 100

    def test_rank_probabilities_sum_to_one(self):
        z = ZipfGenerator(50, skew=0.99)
        total = sum(z.probability_of_rank(r) for r in range(50))
        assert total == pytest.approx(1.0)

    def test_rank_probabilities_decrease(self):
        z = ZipfGenerator(1000, skew=0.99)
        probs = [z.probability_of_rank(r) for r in range(10)]
        assert all(a > b for a, b in zip(probs, probs[1:]))

    def test_empirical_matches_rank1_probability(self):
        z = ZipfGenerator(100, skew=0.99, rng=np.random.default_rng(2),
                          shuffle=False)
        samples = z.sample_many(100_000)
        empirical = np.mean(samples == 0)
        assert empirical == pytest.approx(z.probability_of_rank(0), rel=0.05)

    def test_zero_skew_is_uniform(self):
        z = ZipfGenerator(10, skew=0.0)
        for r in range(10):
            assert z.probability_of_rank(r) == pytest.approx(0.1)

    def test_shuffle_spreads_hot_keys(self):
        """With shuffling, the hottest item id is (almost surely) not 0."""
        hot_ids = set()
        for seed in range(8):
            z = ZipfGenerator(
                10_000, rng=np.random.default_rng(seed), shuffle=True
            )
            samples = z.sample_many(2000)
            ids, counts = np.unique(samples, return_counts=True)
            hot_ids.add(int(ids[np.argmax(counts)]))
        assert hot_ids != {0}

    def test_sample_one_by_one_matches_batched_stream(self):
        a = ZipfGenerator(100, rng=np.random.default_rng(7), batch_size=16)
        singles = [a.sample() for _ in range(64)]
        assert all(0 <= s < 100 for s in singles)

    def test_determinism_given_seed(self):
        a = ZipfGenerator(100, rng=np.random.default_rng(3))
        b = ZipfGenerator(100, rng=np.random.default_rng(3))
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]


class TestValidation:
    def test_rejects_bad_args(self):
        with pytest.raises(ConfigError):
            ZipfGenerator(0)
        with pytest.raises(ConfigError):
            ZipfGenerator(10, skew=-1.0)
        z = ZipfGenerator(10)
        with pytest.raises(ConfigError):
            z.probability_of_rank(10)
        with pytest.raises(ConfigError):
            z.sample_many(-1)


@given(st.integers(2, 500), st.floats(0.0, 2.0))
@settings(max_examples=40, deadline=None)
def test_cdf_is_monotone_and_complete(n, skew):
    z = ZipfGenerator(n, skew=skew)
    probs = [z.probability_of_rank(r) for r in range(n)]
    assert all(p > 0 for p in probs)
    assert sum(probs) == pytest.approx(1.0)
