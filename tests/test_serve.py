"""Tests for the ``repro.serve`` subsystem.

Three layers:

* scheduler unit tests with an injectable ``simulate`` stub — priority
  order, admission control, cancellation, cross-job in-flight dedup;
* HTTP API tests against a live server on an ephemeral port —
  validation errors, job lifecycle, events cursor, 429/409/404;
* the end-to-end acceptance test: a ``fig1`` job served over HTTP is
  byte-identical to the same specs run through ``run_points`` locally,
  and an identical re-submission completes without re-simulating
  (asserted via the cache/dedup counters on ``/metrics``).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.parallel import run_points
from repro.errors import ConfigError
from repro.experiments import SPEC_BUILDERS
from repro.experiments.common import (
    RESULT_SCHEMA_VERSION,
    ExperimentSettings,
    kvs_system,
    kvs_workload,
    point_row,
    point_spec,
)
from repro.obs.manifest import RunManifest, runs_dir
from repro.obs.validate import validate_run_dir
from repro.serve import (
    JobScheduler,
    QueueFull,
    ServeClient,
    ServeError,
    UnknownJob,
    create_server,
    parse_job_request,
)
from repro.serve.jobs import BadRequest, JobRequest, TERMINAL_STATES

SCALE = 0.05
SETTINGS = ExperimentSettings(scale=SCALE, measure_multiplier=0.1)


def one_spec(seed: int, label: str = ""):
    return point_spec(
        label or f"s{seed}",
        kvs_system(SCALE, 64, 2, 512),
        kvs_workload(0.02, 512),
        "ddio",
        settings=SETTINGS,
        seed=seed,
    )


def one_request(name: str, seed: int, priority: int = 0, label: str = "") -> JobRequest:
    return JobRequest(name, [one_spec(seed, label)], SCALE, priority=priority)


class FakeResult:
    """The minimal result surface the scheduler touches."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.sim_seconds = 0.0
        self.from_cache = False
        self.timeline_file = None


def wait_terminal(jobs, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    for job in jobs:
        while job.state not in TERMINAL_STATES:
            assert time.monotonic() < deadline, f"{job.id} stuck {job.state}"
            time.sleep(0.005)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pointcache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    return tmp_path / "pointcache"


@pytest.fixture()
def sched_env(monkeypatch):
    """Scheduler unit tests: no cache, no manifests, stub results."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_NO_MANIFEST", "1")


class TestScheduler:
    def test_priority_order_fifo_within_priority(self, sched_env):
        calls = []

        def simulate(spec, run_dir):
            calls.append(spec.seed)
            return FakeResult(spec.label)

        s = JobScheduler(workers=1, max_concurrent_jobs=1, simulate=simulate)
        jobs = [
            s.submit(one_request("low", 1, priority=0)),
            s.submit(one_request("high", 2, priority=5)),
            s.submit(one_request("high2", 3, priority=5)),
        ]
        s.start()
        wait_terminal(jobs)
        s.stop()
        assert calls == [2, 3, 1]
        assert all(j.state == "done" for j in jobs)

    def test_admission_control_queue_full(self, sched_env):
        s = JobScheduler(workers=1, queue_limit=2)  # never started: all queue
        s.submit(one_request("a", 1))
        s.submit(one_request("b", 2))
        with pytest.raises(QueueFull):
            s.submit(one_request("c", 3))
        assert "serve_jobs_rejected_total 1" in s.registry.render_text()
        s.stop()

    def test_cancel_mid_queue_never_runs(self, sched_env):
        calls = []

        def simulate(spec, run_dir):
            calls.append(spec.seed)
            return FakeResult(spec.label)

        s = JobScheduler(workers=1, max_concurrent_jobs=1, simulate=simulate)
        kept = s.submit(one_request("kept", 1))
        doomed = s.submit(one_request("doomed", 2))
        s.cancel(doomed.id)
        assert doomed.state == "cancelled"
        s.start()
        wait_terminal([kept])
        s.stop()
        assert calls == [1]
        events = [e["event"] for e in doomed.events_since(0)[0]]
        assert events == ["job.submitted", "job.finished"]

    def test_cancel_unknown_job(self, sched_env):
        s = JobScheduler(workers=1)
        with pytest.raises(UnknownJob):
            s.cancel("job-missing")
        s.stop()

    def test_inflight_dedup_simulates_once(self, sched_env):
        release = threading.Event()
        calls = []

        def simulate(spec, run_dir):
            calls.append(spec.seed)
            release.wait(timeout=10)
            return FakeResult(spec.label)

        s = JobScheduler(workers=1, max_concurrent_jobs=2, simulate=simulate)
        # Same seed => same fingerprint (labels differ; label is excluded).
        ja = s.submit(one_request("a", 7, label="A"))
        jb = s.submit(one_request("b", 7, label="B"))
        s.start()
        deadline = time.monotonic() + 10
        while not (ja.state == "running" and jb.state == "running"):
            assert time.monotonic() < deadline, "jobs did not start"
            time.sleep(0.005)
        time.sleep(0.2)  # let the second job attach to the in-flight future
        release.set()
        wait_terminal([ja, jb])
        s.stop()
        assert calls == [7]  # exactly one simulation for both jobs
        assert ja.simulated_points + jb.simulated_points == 1
        assert ja.deduped_points + jb.deduped_points == 1
        assert ja.results[0].label == "A"
        assert jb.results[0].label == "B"
        attached = ja if ja.deduped_points else jb
        assert attached.results[0].from_cache
        text = s.registry.render_text()
        assert 'serve_points_total{source="dedup"} 1' in text
        assert 'serve_points_total{source="simulated"} 1' in text

    def test_parse_job_request_validation(self):
        with pytest.raises(BadRequest):
            parse_job_request([])
        with pytest.raises(BadRequest):
            parse_job_request({})  # neither experiment nor points
        with pytest.raises(BadRequest):
            parse_job_request({"experiment": "fig1", "points": []})
        with pytest.raises(BadRequest):
            parse_job_request({"experiment": "nope"})
        with pytest.raises(BadRequest):
            parse_job_request({"points": []})
        with pytest.raises(BadRequest):
            parse_job_request({"experiment": "fig1", "scale": 2.0})
        with pytest.raises(BadRequest):
            parse_job_request({"experiment": "fig1", "priority": "high"})
        with pytest.raises(BadRequest):
            parse_job_request(
                {"points": [{"label": "x"}, {"label": "x"}]}
            )  # duplicate labels
        with pytest.raises(BadRequest):
            parse_job_request({"points": [{"policy": "magic"}]})
        request = parse_job_request(
            {"experiment": "fig1", "scale": 0.05, "measure": 0.1, "priority": 3}
        )
        assert request.name == "fig1"
        assert request.priority == 3
        assert len(request.specs) == len(SPEC_BUILDERS["fig1"](SETTINGS))

    def test_unknown_point_keys_rejected(self):
        with pytest.raises(BadRequest) as err:
            parse_job_request(
                {"points": [{"label": "x", "swepper": True, "waz": 4}]}
            )
        message = str(err.value)
        assert "swepper" in message and "waz" in message
        assert "allowed" in message  # the 400 teaches the valid keys

    def test_unservable_experiments_rejected_with_reason(self):
        for name in ("fig9", "table1"):
            with pytest.raises(BadRequest) as err:
                parse_job_request({"experiment": name})
            assert "not servable" in str(err.value)


@pytest.fixture()
def recovery_env(monkeypatch):
    """Fault-tolerance tests: manifests ON, cache off, instant retries."""
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0")


def job_manifest(job):
    """Load + schema-validate the manifest a served job left behind."""
    assert job.run_id, "job finished without a run_id"
    run_dir = runs_dir() / job.run_id
    manifest = RunManifest.load(run_dir / "manifest.json")
    validate_run_dir(run_dir)
    return manifest


class TestFaultTolerance:
    def test_concurrent_cancels_decrement_once(self, sched_env):
        # Regression: racing cancels of one queued job used to each
        # decrement _queued (driving serve_queue_depth negative and
        # leaking admission slots) and double-count the finish metric.
        s = JobScheduler(workers=1)  # never started: jobs stay queued
        s.submit(one_request("bystander", 1))
        doomed = s.submit(one_request("doomed", 2))
        barrier = threading.Barrier(8)

        def attack():
            barrier.wait()
            s.cancel(doomed.id)

        threads = [threading.Thread(target=attack) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert doomed.state == "cancelled"
        assert s._queued == 1  # exactly the bystander
        text = s.registry.render_text()
        assert 'serve_jobs_finished_total{state="cancelled"} 1' in text
        assert "serve_queue_depth 1" in text
        events = [e["event"] for e in doomed.events_since(0)[0]]
        assert events.count("job.finished") == 1
        s.stop()

    def test_transient_failure_retried_to_done(self, recovery_env):
        calls = []

        def simulate(spec, run_dir):
            calls.append(spec.seed)
            if len(calls) == 1:
                raise RuntimeError("transient glitch")
            return FakeResult(spec.label)

        s = JobScheduler(workers=1, simulate=simulate)
        job = s.submit(one_request("a", 1))
        s.start()
        wait_terminal([job])
        s.stop()
        assert job.state == "done"
        assert job.retried_points == 1
        assert len(calls) == 2
        events = [e["event"] for e in job.events_since(0)[0]]
        assert "point.retry" in events
        manifest = job_manifest(job)
        assert manifest.status == "done"
        assert manifest.points[0].status == "done"
        assert manifest.points[0].attempts == 2
        assert "serve_point_retries_total 1" in s.registry.render_text()

    def test_exhausted_retries_fail_job_with_manifest(
        self, recovery_env, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RETRIES", "0")

        def simulate(spec, run_dir):
            raise RuntimeError("hard failure")

        s = JobScheduler(workers=1, simulate=simulate)
        job = s.submit(one_request("a", 1))
        s.start()
        wait_terminal([job])
        s.stop()
        assert job.state == "failed"
        assert "hard failure" in job.error
        manifest = job_manifest(job)
        assert manifest.status == "failed"
        assert manifest.points[0].status == "failed"
        assert "hard failure" in manifest.points[0].error
        assert manifest.points[0].attempts == 1

    def test_cancel_mid_run_finalizes_manifest(self, recovery_env):
        entered = threading.Event()
        release = threading.Event()

        def simulate(spec, run_dir):
            entered.set()
            release.wait(timeout=10)
            return FakeResult(spec.label)

        s = JobScheduler(workers=1, simulate=simulate)
        job = s.submit(
            JobRequest("a", [one_spec(1, "p1"), one_spec(2, "p2")], SCALE)
        )
        s.start()
        assert entered.wait(5)
        s.cancel(job.id)
        release.set()
        wait_terminal([job])
        s.stop()
        assert job.state == "cancelled"
        manifest = job_manifest(job)
        assert manifest.status == "cancelled"
        # The in-flight point finished its boundary; the rest never ran.
        assert [p.status for p in manifest.points] == ["done", "skipped"]

    def test_drain_stops_at_point_boundary(self, recovery_env):
        entered = threading.Event()
        release = threading.Event()

        def simulate(spec, run_dir):
            if spec.label == "p1":
                entered.set()
                release.wait(timeout=10)
            return FakeResult(spec.label)

        s = JobScheduler(workers=1, max_concurrent_jobs=1, simulate=simulate)
        running = s.submit(
            JobRequest("a", [one_spec(1, "p1"), one_spec(2, "p2")], SCALE)
        )
        queued = s.submit(one_request("b", 3))
        s.start()
        assert entered.wait(5)
        s.drain()
        assert s.draining
        release.set()
        wait_terminal([running])
        assert s.wait_idle(timeout=10)
        # The running job stopped at the next point boundary...
        assert running.state == "cancelled"
        assert "drained" in running.error
        manifest = job_manifest(running)
        assert manifest.status == "partial"
        assert [p.status for p in manifest.points] == ["done", "skipped"]
        # ...and the queued job was never launched.
        assert queued.state == "queued"
        s.stop()

    def test_point_timeout_abandons_straggler(self, recovery_env, monkeypatch):
        monkeypatch.setenv("REPRO_POINT_TIMEOUT_S", "0.25")
        monkeypatch.setenv("REPRO_RETRIES", "3")
        calls = []

        def simulate(spec, run_dir):
            calls.append(spec.seed)
            if len(calls) == 1:
                time.sleep(1.2)  # straggler: several timeout windows
            return FakeResult(spec.label)

        s = JobScheduler(workers=1, simulate=simulate)
        job = s.submit(one_request("a", 1))
        s.start()
        wait_terminal([job])
        s.stop()
        assert job.state == "done"
        assert job.retried_points >= 1
        manifest = job_manifest(job)
        assert manifest.status == "done"
        assert manifest.points[0].attempts >= 2


@pytest.fixture()
def make_server(cache_dir):
    """Factory for live servers on ephemeral ports; torn down afterwards."""
    created = []

    def factory(start: bool = True, **scheduler_kwargs):
        scheduler = JobScheduler(workers=1, **scheduler_kwargs)
        server = create_server(port=0, scheduler=scheduler)
        if start:
            scheduler.start()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        created.append((server, scheduler))
        host, port = server.server_address[:2]
        client = ServeClient(f"http://{host}:{port}")
        client.scheduler = scheduler  # for drain/fault tests
        return client

    yield factory
    for server, scheduler in created:
        server.shutdown()
        server.server_close()
        scheduler.stop(wait=False)


class TestServeHTTP:
    def test_healthz_metrics_and_validation(self, make_server):
        client = make_server()
        health = client.healthz()
        assert health["ok"] is True
        assert health["workers"] == 1
        assert set(health["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled"
        }
        assert "# TYPE serve_queue_depth gauge" in client.metrics_text()
        assert client.jobs() == []
        for bad in ({}, {"experiment": "nope"}, {"points": []}):
            with pytest.raises(ServeError) as err:
                client.submit(bad)
            assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.job("job-missing")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client.cancel("job-missing")
        assert err.value.status == 404

    def test_unknown_point_key_is_400(self, make_server):
        client = make_server(start=False)
        with pytest.raises(ServeError) as err:
            client.submit_points([{"label": "x", "seed": 1, "swepper": True}])
        assert err.value.status == 400
        assert "swepper" in err.value.payload["error"]

    def test_unservable_experiment_is_400(self, make_server):
        client = make_server(start=False)
        with pytest.raises(ServeError) as err:
            client.submit({"experiment": "fig9"})
        assert err.value.status == 400
        assert "not servable" in err.value.payload["error"]

    def test_healthz_reports_draining(self, make_server):
        client = make_server()
        assert client.healthz()["status"] == "ok"
        client.scheduler.drain()
        health = client.healthz()
        assert health["status"] == "draining"
        assert health["ok"] is True  # still serving reads

    def test_queue_full_is_429(self, make_server):
        client = make_server(start=False, queue_limit=2)
        client.submit_points([{"label": "a", "seed": 1}])
        client.submit_points([{"label": "b", "seed": 2}])
        with pytest.raises(ServeError) as err:
            client.submit_points([{"label": "c", "seed": 3}])
        assert err.value.status == 429

    def test_result_409_then_cancel_and_events(self, make_server):
        client = make_server(start=False)  # job stays queued
        job = client.submit_points([{"label": "x", "seed": 1}])
        assert job["state"] == "queued"
        with pytest.raises(ServeError) as err:
            client.result(job["id"])
        assert err.value.status == 409
        assert err.value.payload["state"] == "queued"
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        page = client.events(job["id"])
        names = [e["event"] for e in page["events"]]
        assert names == ["job.submitted", "job.finished"]
        assert page["events"][-1]["state"] == "cancelled"
        # Cursor-based polling: nothing new past the cursor.
        again = client.events(job["id"], cursor=page["cursor"])
        assert again["events"] == []
        assert again["cursor"] == page["cursor"]
        with pytest.raises(ServeError) as err:
            client.events(job["id"], cursor=-1)
        assert err.value.status == 400


class TestServeClientTransport:
    """Connection-refused retry + the REPRO_SERVE_TIMEOUT_S knob."""

    class _FakeResponse:
        def __enter__(self):
            return self

        def __exit__(self, *_exc):
            return False

        def read(self):
            return b'{"ok": true}'

    def test_timeout_env_knob(self, monkeypatch):
        assert ServeClient("http://x").timeout == 30.0
        monkeypatch.setenv("REPRO_SERVE_TIMEOUT_S", "7.5")
        assert ServeClient("http://x").timeout == 7.5
        assert ServeClient("http://x", timeout=2.0).timeout == 2.0
        monkeypatch.setenv("REPRO_SERVE_TIMEOUT_S", "soon")
        with pytest.raises(ConfigError):
            ServeClient("http://x")
        monkeypatch.setenv("REPRO_SERVE_TIMEOUT_S", "0")
        with pytest.raises(ConfigError):
            ServeClient("http://x")

    def test_connection_refused_retried_with_backoff(self, monkeypatch):
        calls = {"n": 0}

        def fake_urlopen(request, timeout=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise urllib.error.URLError(
                    ConnectionRefusedError(111, "refused")
                )
            return self._FakeResponse()

        sleeps = []
        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
        client = ServeClient("http://127.0.0.1:1", connect_backoff_s=0.1)
        assert client.healthz() == {"ok": True}
        assert calls["n"] == 3
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_connection_refused_retries_bounded(self, monkeypatch):
        calls = {"n": 0}

        def fake_urlopen(request, timeout=None):
            calls["n"] += 1
            raise urllib.error.URLError(ConnectionRefusedError(111, "refused"))

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServeClient(
            "http://127.0.0.1:1", connect_retries=2, connect_backoff_s=0.0
        )
        with pytest.raises(urllib.error.URLError):
            client.healthz()
        assert calls["n"] == 3  # initial attempt + 2 retries

    def test_other_transport_errors_not_retried(self, monkeypatch):
        calls = {"n": 0}

        def fake_urlopen(request, timeout=None):
            calls["n"] += 1
            raise urllib.error.URLError(OSError("no route to host"))

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServeClient("http://127.0.0.1:1")
        with pytest.raises(urllib.error.URLError):
            client.healthz()
        assert calls["n"] == 1

    def test_http_errors_not_retried(self, make_server):
        # A reachable server returning 4xx must surface immediately as
        # ServeError (HTTPError is never a connection problem).
        client = make_server(start=False)
        before = time.monotonic()
        with pytest.raises(ServeError) as err:
            client.job("job-missing")
        assert err.value.status == 404
        assert time.monotonic() - before < 2.0  # no backoff loop


class TestServeEndToEnd:
    def test_fig1_bit_identical_then_cached_resubmit(
        self, make_server, monkeypatch
    ):
        scale, measure = 0.05, 0.05
        settings = ExperimentSettings(scale=scale, measure_multiplier=measure)
        specs = SPEC_BUILDERS["fig1"](settings)

        # Local reference run: pure simulation, nothing cached.
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        local = run_points(specs, max_workers=1)
        monkeypatch.delenv("REPRO_NO_CACHE")
        local_rows = [point_row(p, scale) for p in local]

        client = make_server()
        job = client.submit_experiment("fig1", scale=scale, measure=measure)
        snapshot = client.wait(job["id"], timeout=600)
        assert snapshot["state"] == "done"
        assert snapshot["simulated_points"] == len(specs)
        assert snapshot["done_points"] == len(specs)

        result = client.result(job["id"])
        assert result["schema"] == RESULT_SCHEMA_VERSION
        assert result["figure"] == "fig1"
        assert result["scale"] == scale

        def strip(row):  # wall-clock timing is the only legitimate delta
            return {k: v for k, v in row.items() if k != "sim_seconds"}

        assert json.dumps(
            [strip(r) for r in result["rows"]], sort_keys=True
        ) == json.dumps([strip(r) for r in local_rows], sort_keys=True)
        assert all(not r["from_cache"] for r in result["rows"])

        # The served job wrote a normal, valid run manifest.
        assert snapshot["run_id"]
        run_dir = runs_dir() / snapshot["run_id"]
        assert (run_dir / "manifest.json").is_file()
        validate_run_dir(run_dir)

        # Re-submitting the identical job must not re-simulate: every
        # point arrives via the point cache (or in-flight dedup), which
        # the /metrics counters prove.
        before = client.metrics()
        job2 = client.submit_experiment("fig1", scale=scale, measure=measure)
        snapshot2 = client.wait(job2["id"], timeout=120)
        assert snapshot2["state"] == "done"
        assert snapshot2["simulated_points"] == 0
        assert snapshot2["cached_points"] + snapshot2["deduped_points"] == len(specs)
        after = client.metrics()
        simulated = 'serve_points_total{source="simulated"}'
        cache_or_dedup = (
            after.get('serve_points_total{source="cache"}', 0)
            + after.get('serve_points_total{source="dedup"}', 0)
        )
        assert after[simulated] == before[simulated] == len(specs)
        assert cache_or_dedup >= len(specs)
        assert after['serve_jobs_finished_total{state="done"}'] == 2
        rows2 = client.result(job2["id"])["rows"]
        assert json.dumps(
            [strip(r) for r in rows2], sort_keys=True
        ) == json.dumps(
            [strip({**r, "from_cache": True}) for r in local_rows],
            sort_keys=True,
        )


class TestJsonCli:
    def test_json_flag_emits_shared_schema(self, capsys):
        from repro.experiments.__main__ import main as experiments_main

        assert experiments_main(["table1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == RESULT_SCHEMA_VERSION
        assert payload["rows"] == []  # table1 is analytic-only
        assert payload["title"]
        # Same top-level keys as GET /jobs/<id>/result.
        assert set(payload) == {
            "schema", "figure", "title", "scale", "rows", "series", "notes"
        }

    def test_result_dict_requires_done(self):
        from repro.serve.jobs import Job

        job = Job(one_request("a", 1))
        with pytest.raises(ConfigError):
            job.result_dict()
