"""End-to-end invariants of the trace engine — the paper's core claims
reproduced at miniature scale."""

import pytest

from repro.cache.hierarchy import AccessLevel
from repro.engine.tracer import CollocationSimulator, TraceConfig, TraceSimulator
from repro.errors import ConfigError
from repro.traffic import MemCategory
from repro.workloads.xmem import XMemParams, XMemWorkload

from tests.conftest import make_tiny_kvs, make_tiny_l3fwd, make_tiny_system


def run_trace(policy="ddio", sweeper=False, queued_depth=1, workload=None,
              system=None, warmup=3000, measure=2000, **sys_kwargs):
    system = system or make_tiny_system(**sys_kwargs)
    cfg = TraceConfig(
        system=system,
        workload=workload or make_tiny_kvs(),
        policy=policy,
        sweeper=sweeper,
        queued_depth=queued_depth,
        warmup_requests=warmup,
        measure_requests=measure,
    )
    return TraceSimulator(cfg).run()


class TestBaselineShapes:
    def test_ddio_breakdown_dominated_by_consumed_evictions(self):
        """§IV-A: RX Evct dominates; premature (CPU RX Rd) negligible."""
        r = run_trace("ddio")
        per = r.per_request()
        assert per[MemCategory.RX_EVCT] > 1.0
        assert per[MemCategory.CPU_RX_RD] < 0.1 * per[MemCategory.RX_EVCT]
        assert per[MemCategory.NIC_RX_WR] == 0.0

    def test_dma_breakdown(self):
        """DMA: NIC writes and CPU reads hit memory once per packet block;
        no RX evictions (CPU copies are clean)."""
        r = run_trace("dma")
        per = r.per_request()
        blocks = 4  # 256B packets
        assert per[MemCategory.NIC_RX_WR] == pytest.approx(blocks, rel=0.01)
        assert per[MemCategory.CPU_RX_RD] == pytest.approx(blocks, rel=0.01)
        assert per[MemCategory.NIC_TX_RD] > 0
        assert per[MemCategory.RX_EVCT] == 0.0

    def test_ideal_ddio_has_zero_network_memory_traffic(self):
        r = run_trace("ideal")
        per = r.per_request()
        for cat in (MemCategory.NIC_RX_WR, MemCategory.NIC_TX_RD,
                    MemCategory.CPU_RX_RD, MemCategory.CPU_TX_RDWR,
                    MemCategory.RX_EVCT, MemCategory.TX_EVCT):
            assert per[cat] == 0.0
        # network buffer reads are serviced at LLC latency
        assert r.level_counts[AccessLevel.LLC] > 0

    def test_dma_moves_more_data_than_ddio(self):
        """Figure 1b/1c: DMA's per-request traffic exceeds DDIO's."""
        dma = run_trace("dma").mem_accesses_per_request()
        ddio = run_trace("ddio").mem_accesses_per_request()
        assert dma > ddio


class TestSweeperClaims:
    def test_sweeper_eliminates_consumed_buffer_evictions(self):
        base = run_trace("ddio", sweeper=False)
        swept = run_trace("ddio", sweeper=True)
        base_evct = base.per_request()[MemCategory.RX_EVCT]
        assert base_evct > 1.0
        assert swept.per_request()[MemCategory.RX_EVCT] < 0.05 * base_evct
        assert swept.sweep_instructions > 0

    def test_sweeper_reduces_total_memory_traffic(self):
        base = run_trace("ddio", sweeper=False)
        swept = run_trace("ddio", sweeper=True)
        assert (
            swept.mem_accesses_per_request()
            < 0.7 * base.mem_accesses_per_request()
        )

    def test_sweeper_insensitive_to_buffer_depth(self):
        """§VI-A: Sweeper breaks the buffer-provisioning tradeoff."""
        shallow = run_trace("ddio", sweeper=True, rx_buffers=32)
        deep = run_trace("ddio", sweeper=True, rx_buffers=256)
        assert deep.mem_accesses_per_request() == pytest.approx(
            shallow.mem_accesses_per_request(), rel=0.15
        )

    def test_baseline_degrades_with_buffer_depth(self):
        shallow = run_trace("ddio", rx_buffers=16)
        deep = run_trace("ddio", rx_buffers=256)
        assert (
            deep.per_request()[MemCategory.RX_EVCT]
            > shallow.per_request()[MemCategory.RX_EVCT]
        )

    def test_residual_rx_evictions_match_premature_reads(self):
        """Figure 7b signature: with Sweeper, RX Evct == CPU RX Rd."""
        r = run_trace("ddio", sweeper=True, queued_depth=24,
                      workload=make_tiny_l3fwd())
        per = r.per_request()
        assert per[MemCategory.CPU_RX_RD] > 0.3  # premature evictions exist
        assert per[MemCategory.RX_EVCT] == pytest.approx(
            per[MemCategory.CPU_RX_RD], rel=0.1
        )


class TestQueuedDepth:
    def test_backlog_maintained(self):
        system = make_tiny_system(rx_buffers=64)
        cfg = TraceConfig(system=system, workload=make_tiny_kvs(),
                          queued_depth=16, warmup_requests=0,
                          measure_requests=10)
        sim = TraceSimulator(cfg)
        sim.run_requests(50)
        for ring in sim.rx_rings:
            assert 15 <= ring.backlog <= 16

    def test_deeper_queues_cause_premature_evictions(self):
        shallow = run_trace("ddio", queued_depth=1, workload=make_tiny_l3fwd())
        deep = run_trace("ddio", queued_depth=24, workload=make_tiny_l3fwd())
        assert (
            deep.per_request()[MemCategory.CPU_RX_RD]
            > shallow.per_request()[MemCategory.CPU_RX_RD] + 0.2
        )

    def test_invalid_depth_rejected(self):
        system = make_tiny_system()
        cfg = TraceConfig(system=system, workload=make_tiny_kvs(),
                          queued_depth=0)
        with pytest.raises(ConfigError):
            TraceSimulator(cfg)

    def test_no_drops_when_depth_fits_ring(self):
        r = run_trace("ddio", queued_depth=16, rx_buffers=64)
        assert r.drops == 0


class TestZeroCopyTxPath:
    def test_nic_sweeps_rx_buffer_after_transmit(self):
        """§V-D: zero-copy NF + SweepBuffer -> NIC-driven sweeping."""
        r = run_trace("ddio", sweeper=True,
                      workload=make_tiny_l3fwd(zero_copy=True))
        assert r.nic_sweeps > 0
        assert r.sweep_instructions == 0  # CPU never relinquishes
        assert r.per_request()[MemCategory.RX_EVCT] < 0.05

    def test_zero_copy_without_sweeper_still_leaks(self):
        r = run_trace("ddio", sweeper=False,
                      workload=make_tiny_l3fwd(zero_copy=True))
        assert r.per_request()[MemCategory.RX_EVCT] > 1.0


class TestMeasurement:
    def test_per_request_normalisation(self):
        r = run_trace("ddio", measure=1000)
        assert r.requests == 1000
        total = sum(r.per_request().values())
        assert total == pytest.approx(r.mem_accesses_per_request())

    def test_levels_accounting_covers_all_cpu_accesses(self):
        r = run_trace("ddio")
        levels = r.levels_per_request()
        # packet reads + app + tx writes, all attributed to some level
        assert sum(levels.values()) > 4  # at least the packet blocks

    def test_zero_measure_rejected(self):
        system = make_tiny_system()
        cfg = TraceConfig(system=system, workload=make_tiny_kvs(),
                          warmup_requests=0, measure_requests=0)
        with pytest.raises(ConfigError):
            TraceSimulator(cfg).run()

    def test_determinism(self):
        a = run_trace("ddio", warmup=500, measure=500)
        b = run_trace("ddio", warmup=500, measure=500)
        assert a.traffic.snapshot() == b.traffic.snapshot()
        assert a.level_counts == b.level_counts


class TestCollocation:
    def make(self, sweeper=False, xmem_mask=None):
        system = make_tiny_system(num_cores=2)
        cfg = TraceConfig(
            system=system,
            workload=make_tiny_l3fwd(),
            policy="ddio",
            sweeper=sweeper,
            warmup_requests=1500,
            measure_requests=1000,
        )
        return CollocationSimulator(
            cfg,
            XMemWorkload(XMemParams(dataset_bytes=1 << 16)),
            xmem_cores=[1],
            xmem_ways_mask=xmem_mask,
        )

    def test_xmem_activity_recorded(self):
        result = self.make().run_collocated()
        assert result.xmem_accesses > 0
        rates = result.xmem_levels_per_access()
        assert sum(rates.values()) == pytest.approx(1.0)

    def test_xmem_partition_respected(self):
        sim = self.make(xmem_mask=[10, 11])
        sim.run_collocated()
        # X-Mem's dataset blocks in the LLC live only in ways 10-11.
        region = sim.space.region("xmem_dataset[1]")
        for block in sim.hier.llc.resident_blocks():
            if region.contains_block(block):
                assert sim.hier.llc.way_of(block) in (10, 11)

    def test_requires_an_nf_core(self):
        system = make_tiny_system(num_cores=2)
        cfg = TraceConfig(system=system, workload=make_tiny_l3fwd())
        with pytest.raises(ConfigError):
            CollocationSimulator(cfg, XMemWorkload(), xmem_cores=[0, 1])

    def test_sweeper_does_not_hurt_partitioned_xmem_hit_rate(self):
        """§VI-E disjoint partitions: with X-Mem fenced off from the DDIO
        ways, Sweeper's cleaning must not degrade X-Mem's cache hit rate
        (its IPC gain then comes from the bandwidth relief the analytic
        layer models)."""
        mask = list(range(2, 12))
        base = self.make(sweeper=False, xmem_mask=mask).run_collocated()
        swept = self.make(sweeper=True, xmem_mask=mask).run_collocated()
        base_mem = base.xmem_level_counts[AccessLevel.MEM] / base.xmem_accesses
        swept_mem = (
            swept.xmem_level_counts[AccessLevel.MEM] / swept.xmem_accesses
        )
        assert swept_mem <= base_mem + 0.03
