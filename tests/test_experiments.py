"""Smoke + shape tests for every figure harness at miniature scale.

These run the real experiment code end to end (small machine, shortened
measurement) and assert the *qualitative* result each paper figure
exists to show. The benchmarks re-run the same harnesses at the larger
default scale and print the full rows.
"""

import pytest

from repro.experiments import REGISTRY, fig1, fig2, fig5, fig6, fig7, fig8, fig9, fig10
from repro.experiments import headline, table1
from repro.experiments.common import ExperimentSettings
from repro.traffic import MemCategory

SETTINGS = ExperimentSettings(scale=0.05, measure_multiplier=0.25)


def test_registry_covers_every_artifact():
    assert set(REGISTRY) == {
        "table1", "fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9",
        "fig10", "figS1", "figS2", "headline", "zoo",
    }


class TestTable1:
    def test_renders_paper_parameters(self):
        r = table1.run(settings=SETTINGS)
        text = r.series["rendered"]
        assert "24 x86-64 cores" in text
        assert "36 MB 12-way" in text
        assert "DDR4-3200" in text


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run(settings=SETTINGS)

    def test_ddio_beats_dma(self, result):
        for buffers in fig1.BUFFER_SWEEP:
            dma = result.point(f"{buffers} bufs / DMA")
            ddio = result.point(f"{buffers} bufs / DDIO 2 Ways")
            assert ddio.throughput_mrps > dma.throughput_mrps

    def test_ideal_is_upper_bound(self, result):
        for buffers in fig1.BUFFER_SWEEP:
            ideal = result.point(f"{buffers} bufs / Ideal DDIO")
            for ways in fig1.DDIO_WAYS:
                ddio = result.point(f"{buffers} bufs / DDIO {ways} Ways")
                assert ideal.throughput_mrps >= 0.95 * ddio.throughput_mrps

    def test_consumed_evictions_dominate_ddio_leaks(self, result):
        p = result.point("2048 bufs / DDIO 2 Ways").breakdown
        assert p[MemCategory.RX_EVCT] > 1.0
        assert p[MemCategory.CPU_RX_RD] < 0.2 * p[MemCategory.RX_EVCT]

    def test_deeper_buffers_leak_more(self, result):
        small = result.point("512 bufs / DDIO 2 Ways").breakdown
        big = result.point("2048 bufs / DDIO 2 Ways").breakdown
        assert big[MemCategory.RX_EVCT] >= small[MemCategory.RX_EVCT]


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run(settings=SETTINGS)

    def test_premature_evictions_grow_with_queue_depth(self, result):
        shallow = result.point("D=50 / DDIO 2 Ways").breakdown
        deep = result.point("D=450 / DDIO 2 Ways").breakdown
        assert deep[MemCategory.CPU_RX_RD] > shallow[MemCategory.CPU_RX_RD]

    def test_more_ways_reduce_premature_evictions(self, result):
        w2 = result.point("D=450 / DDIO 2 Ways").breakdown
        w12 = result.point("D=450 / DDIO 12 Ways").breakdown
        assert w12[MemCategory.CPU_RX_RD] < w2[MemCategory.CPU_RX_RD]

    def test_ideal_ddio_memory_traffic_negligible(self, result):
        for depth in fig2.QUEUE_DEPTHS:
            ideal = result.point(f"D={depth} / Ideal DDIO")
            w2 = result.point(f"D={depth} / DDIO 2 Ways")
            assert ideal.trace.mem_accesses_per_request() < (
                0.2 * w2.trace.mem_accesses_per_request()
            )


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(
            settings=SETTINGS,
            packet_sizes=(1024,),
            buffer_sweep=(512, 2048),
            ddio_ways=(2, 12),
        )

    def test_sweeper_eliminates_rx_evictions(self, result):
        for buffers in (512, 2048):
            base = result.point(f"1024B / {buffers} bufs / DDIO 2 Ways")
            sw = result.point(f"1024B / {buffers} bufs / DDIO 2 Ways + Sweeper")
            assert base.breakdown[MemCategory.RX_EVCT] > 0.5
            assert sw.breakdown[MemCategory.RX_EVCT] < 0.1 * (
                base.breakdown[MemCategory.RX_EVCT]
            )

    def test_sweeper_always_helps(self, result):
        assert result.series["sweeper_gain_min"] >= 1.0

    def test_sweeper_near_ideal(self, result):
        for buffers in (512, 2048):
            ideal = result.point(f"1024B / {buffers} bufs / Ideal DDIO")
            sw = result.point(
                f"1024B / {buffers} bufs / DDIO 12 Ways + Sweeper"
            )
            assert sw.throughput_mrps >= 0.75 * ideal.throughput_mrps

    def test_sweeper_insensitive_to_buffers_baseline_is_not(self, result):
        base_512 = result.point("1024B / 512 bufs / DDIO 2 Ways")
        base_2048 = result.point("1024B / 2048 bufs / DDIO 2 Ways")
        sw_512 = result.point("1024B / 512 bufs / DDIO 2 Ways + Sweeper")
        sw_2048 = result.point("1024B / 2048 bufs / DDIO 2 Ways + Sweeper")
        sw_spread = abs(sw_2048.throughput_mrps / sw_512.throughput_mrps - 1)
        base_spread = abs(
            base_2048.throughput_mrps / base_512.throughput_mrps - 1
        )
        assert sw_spread < base_spread


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(settings=SETTINGS)

    def test_sweeper_lowers_latency_at_peak_and_iso(self, result):
        for panel in ("at_peak", "iso_throughput"):
            curves = fig6.curves_by_label(result, panel)
            assert (
                curves["DDIO 2 Ways + Sweeper"].mean_cycles
                < curves["DDIO 2 Ways"].mean_cycles
            )
            assert (
                curves["DDIO 2 Ways + Sweeper"].p99_cycles
                < curves["DDIO 2 Ways"].p99_cycles
            )

    def test_cdf_curves_are_valid(self, result):
        for curve in result.series["at_peak"]:
            assert curve.cdf[0] <= 0.01
            assert curve.cdf[-1] > 0.99

    def test_sweeper_runs_at_higher_throughput_at_peak(self, result):
        curves = fig6.curves_by_label(result, "at_peak")
        assert (
            curves["DDIO 2 Ways + Sweeper"].throughput_mrps
            > curves["DDIO 2 Ways"].throughput_mrps
        )


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(settings=SETTINGS)

    def test_sweeper_helps_despite_premature_evictions(self, result):
        assert min(result.series["sweeper_gains"]) > 1.0

    def test_residual_rx_evictions_are_premature_only(self, result):
        for rx_evct, rx_rd in result.series["residual_match"]:
            assert rx_evct == pytest.approx(rx_rd, rel=0.15, abs=0.05)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(settings=SETTINGS)

    def test_more_channels_more_throughput(self, result):
        for packet, buffers in fig8.SCENARIOS:
            a = result.point(f"{packet}B/{buffers} bufs / 3ch / DDIO 2 Ways")
            b = result.point(f"{packet}B/{buffers} bufs / 8ch / DDIO 2 Ways")
            assert b.throughput_mrps > a.throughput_mrps

    def test_sweeper_gain_shrinks_with_channels(self, result):
        gains = result.series["sweeper_gain_by_channels"]
        assert gains[3][1] >= gains[8][1]

    def test_sweeper_never_materially_hurts(self, result):
        # Paper's floor is 1.02x; allow tiny-scale measurement noise on
        # the configs where Sweeper is merely neutral.
        assert gains_min(result) >= 0.95


def gains_min(result):
    return min(lo for lo, _hi in result.series["sweeper_gain_by_channels"].values())


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run(settings=SETTINGS)

    def test_partition_tradeoff_exists(self, result):
        """More DDIO ways help the NF and hurt X-Mem (baseline)."""
        part = result.series["partitioned"]
        nf_small = part[(2, False)].perf.nf_throughput_mrps
        nf_big = part[(10, False)].perf.nf_throughput_mrps
        xm_small = part[(2, False)].perf.xmem_ipc
        xm_big = part[(10, False)].perf.xmem_ipc
        assert nf_big >= nf_small * 0.95
        assert xm_big <= xm_small * 1.05

    def test_sweeper_shifts_the_frontier_outward(self, result):
        part = result.series["partitioned"]
        for a, _b in fig9.PARTITIONS_9A:
            base = part[(a, False)].perf
            sw = part[(a, True)].perf
            assert sw.nf_throughput_mrps >= base.nf_throughput_mrps
            assert sw.xmem_ipc >= base.xmem_ipc * 0.98

    def test_overlapping_sweeper_makes_nf_way_insensitive(self, result):
        over = result.series["overlapping"]
        sw = [over[(w, True)].perf.nf_throughput_mrps
              for w in fig9.OVERLAP_WAYS_9B]
        assert max(sw) / min(sw) < 1.25


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10.run(settings=SETTINGS, packets_per_core=4000)

    def test_deeper_buffers_beat_shallow_on_no_drop_peak(self, result):
        """Paper Fig 10a: shallow (128) handicaps the drop-free peak;
        some deeper provisioning beats it (the exact best depth shifts
        because leaks penalize the deepest baseline config)."""
        peaks = result.series["peak_no_drop_mrps"]
        best_deep = max(peaks[(b, False)] for b in (256, 512, 1024, 2048))
        assert best_deep > peaks[(128, False)]

    def test_sweeper_lifts_deep_buffer_peak(self, result):
        """Paper Fig 10a: with Sweeper, the deepest buffers win outright."""
        peaks = result.series["peak_no_drop_mrps"]
        assert peaks[(2048, True)] >= peaks[(2048, False)]
        assert peaks[(2048, True)] >= max(
            peaks[(b, False)] for b in (128, 256, 512, 1024, 2048)
        )

    def test_drop_curves_monotone(self, result):
        for curve in result.series["drop_curves"]:
            drops = curve.drop_rate
            assert all(b >= a - 0.02 for a, b in zip(drops, drops[1:]))


class TestHeadline:
    @pytest.fixture(scope="class")
    def result(self):
        return headline.run(settings=SETTINGS)

    def test_material_throughput_gain(self, result):
        assert result.series["max_throughput_gain"] > 1.3

    def test_material_bandwidth_saving(self, result):
        assert result.series["max_bandwidth_saving"] > 1.2

    def test_render_mentions_paper_targets(self, result):
        text = result.render()
        assert "2.6x" in text
        assert "1.3x" in text
