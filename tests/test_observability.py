"""Tests for the observability layer (repro.obs) and its engine wiring.

Covers the metrics registry contracts (cardinality cap, disabled-mode
no-ops, histogram bucketing), the fields-derived CacheStats reset, the
atomic event log, the epoch sampler's exact-consistency contract with
end-of-run aggregates, manifest round-trips, run_points provenance, and
the ISSUE acceptance test: a REPRO_EPOCH-enabled fig1 run whose summed
per-epoch dirty-eviction deltas equal the end-of-run aggregate.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cache.stats import CacheStats
from repro.engine.parallel import PointSpec, last_run_dir, run_points, run_spec
from repro.engine.tracer import TraceConfig, TraceSimulator
from repro.errors import ConfigError
from repro.obs.events import EventLog, from_env as eventlog_from_env
from repro.obs.manifest import (
    PointRecord,
    RunManifest,
    manifests_enabled,
    runs_dir,
    validate_manifest,
)
from repro.obs.metrics import (
    NULL_INSTRUMENT,
    MetricsRegistry,
    sample_name,
)
from repro.obs.timeline import (
    EpochSampler,
    ObsContext,
    epoch_from_env,
    load_jsonl,
    validate_timeline,
    write_jsonl,
)
from tests.conftest import make_tiny_kvs, make_tiny_system

DIRTY_KEY_PREFIX = "cache_events_total"


def _summed_dirty_deltas(records) -> float:
    total = 0.0
    for rec in records:
        for key, value in rec["deltas"].items():
            if key.startswith(DIRTY_KEY_PREFIX) and 'event="evictions_dirty"' in key:
                total += value
    return total


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_inc_and_reject_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ConfigError):
            c.inc(-1)

    def test_sample_name_sorts_labels(self):
        assert sample_name("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'
        assert sample_name("m") == "m"

    def test_labelled_children_memoized(self):
        reg = MetricsRegistry()
        fam = reg.counter("events_total", labels=("kind",))
        a1 = fam.labels(kind="a")
        a2 = fam.labels(kind="a")
        assert a1 is a2
        a1.inc(3)
        assert reg.collect() == {'events_total{kind="a"}': 3.0}

    def test_label_cardinality_cap(self):
        reg = MetricsRegistry(max_label_sets=4)
        fam = reg.counter("events_total", labels=("kind",))
        for i in range(4):
            fam.labels(kind=str(i))
        with pytest.raises(ConfigError, match="cardinality"):
            fam.labels(kind="overflow")

    def test_wrong_label_names_rejected(self):
        reg = MetricsRegistry()
        fam = reg.counter("events_total", labels=("kind",))
        with pytest.raises(ConfigError):
            fam.labels(wrong="x")
        with pytest.raises(ConfigError):
            reg.counter("bare").labels(kind="x")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ConfigError, match="already registered"):
            reg.gauge("m")

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("requests_total", labels=("kind",))
        assert c is NULL_INSTRUMENT
        assert c.labels(kind="anything") is NULL_INSTRUMENT
        # every mutation is a silent no-op
        c.inc()
        c.set(5)
        c.observe(1.0)
        calls = []
        reg.register_collector(lambda r: calls.append(r))
        assert reg.collect() == {}
        assert calls == []  # collectors dropped, never invoked

    def test_histogram_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 7.0, 100.0):
            h.observe(v)
        # cumulative per bound: <=1: 2, <=5: 3, <=10: 4, +Inf: 5
        assert h.bucket_counts() == {"1.0": 2, "5.0": 3, "10.0": 4, "+Inf": 5}
        assert h.count == 5
        assert h.sum == pytest.approx(111.5)
        samples = reg.collect()
        assert samples['latency_bucket{le="5.0"}'] == 3.0
        assert samples["latency_count"] == 5.0
        assert samples["latency_sum"] == pytest.approx(111.5)

    def test_histogram_text_exposition_order(self):
        # A lexicographic sort would emit +Inf first and "10.0" before
        # "5.0"; the text format requires ascending cumulative buckets
        # ending at the explicit +Inf, then _count and _sum.
        reg = MetricsRegistry()
        h = reg.histogram("latency", "per-op wall", buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 3.0, 7.0, 100.0):
            h.observe(v)
        text = reg.render_text()
        lines = [l for l in text.splitlines() if l.startswith("latency")]
        assert lines == [
            'latency_bucket{le="1.0"} 1',
            'latency_bucket{le="5.0"} 2',
            'latency_bucket{le="10.0"} 3',
            'latency_bucket{le="+Inf"} 4',
            "latency_count 4",
            "latency_sum 110.5",
        ]
        assert text.index("# TYPE latency histogram") < text.index(
            'latency_bucket{le="1.0"}'
        )
        # buckets are cumulative, so the series is monotone
        counts = [float(l.rsplit(" ", 1)[1]) for l in lines[:4]]
        assert counts == sorted(counts)

    def test_labelled_histogram_exposition_groups_leaves(self):
        reg = MetricsRegistry()
        h = reg.histogram("op_seconds", labels=("op",), buckets=(1.0, 10.0))
        h.labels(op="read").observe(0.5)
        h.labels(op="write").observe(5.0)
        text = reg.render_text()
        lines = [l for l in text.splitlines() if l.startswith("op_seconds")]
        assert lines == [
            'op_seconds_bucket{le="1.0",op="read"} 1',
            'op_seconds_bucket{le="10.0",op="read"} 1',
            'op_seconds_bucket{le="+Inf",op="read"} 1',
            'op_seconds_count{op="read"} 1',
            'op_seconds_sum{op="read"} 0.5',
            'op_seconds_bucket{le="1.0",op="write"} 0',
            'op_seconds_bucket{le="10.0",op="write"} 1',
            'op_seconds_bucket{le="+Inf",op="write"} 1',
            'op_seconds_count{op="write"} 1',
            'op_seconds_sum{op="write"} 5',
        ]

    def test_histogram_rejects_unsorted_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigError):
            reg.histogram("h", buckets=(5.0, 1.0))

    def test_collector_runs_on_collect(self):
        reg = MetricsRegistry()
        raw = {"n": 0}
        c = reg.counter("raw_total")
        reg.register_collector(lambda r: c.set_total(raw["n"]))
        raw["n"] = 7
        assert reg.collect()["raw_total"] == 7.0
        raw["n"] = 9
        assert reg.collect()["raw_total"] == 9.0

    def test_reset_preserves_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("m")
        c.inc(3)
        reg.reset()
        assert reg.collect()["m"] == 0.0
        assert reg.counter("m") is c


# ----------------------------------------------------------------------
# CacheStats fields-derived reset (satellite a)
# ----------------------------------------------------------------------


def test_cache_stats_reset_covers_every_field():
    import dataclasses

    stats = CacheStats()
    for i, f in enumerate(dataclasses.fields(stats), start=1):
        setattr(stats, f.name, i)
    stats.reset()
    assert all(v == 0 for v in stats.as_dict().values())
    # as_dict tracks the field list too
    assert set(stats.as_dict()) == {f.name for f in dataclasses.fields(stats)}


# ----------------------------------------------------------------------
# event log
# ----------------------------------------------------------------------


class TestEventLog:
    def test_text_mode_single_atomic_line(self):
        buf = io.StringIO()
        log = EventLog(mode="text", stream=buf)
        log.info("point.finish", label="a b", done="1/2")
        out = buf.getvalue()
        assert out.count("\n") == 1
        assert "point.finish" in out and 'label="a b"' in out

    def test_text_mode_multiline_block_prefixed(self):
        buf = io.StringIO()
        log = EventLog(mode="text", stream=buf)
        log.emit("profile", label="p1", text="line1\nline2")
        lines = buf.getvalue().splitlines()
        assert lines[1] == "[p1] line1"
        assert lines[2] == "[p1] line2"

    def test_json_mode_fields(self):
        buf = io.StringIO()
        log = EventLog(mode="json", stream=buf)
        log.info("run.start", points=3)
        rec = json.loads(buf.getvalue())
        assert rec["event"] == "run.start"
        assert rec["points"] == 3
        assert rec["level"] == "info"
        assert "ts" in rec

    def test_disabled_silent_but_force_emits(self):
        buf = io.StringIO()
        log = EventLog(mode=None, stream=buf)
        log.info("quiet")
        assert buf.getvalue() == ""
        log.emit("profile", force=True, text="hot spots")
        assert "hot spots" in buf.getvalue()

    def test_level_filtering(self):
        buf = io.StringIO()
        log = EventLog(mode="text", level="warning", stream=buf)
        log.info("dropped")
        log.warning("kept")
        assert "dropped" not in buf.getvalue()
        assert "kept" in buf.getvalue()
        assert not log.would_emit("debug")
        assert log.would_emit("error")

    def test_from_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "yaml")
        with pytest.raises(ConfigError):
            eventlog_from_env()
        monkeypatch.setenv("REPRO_LOG", "json")
        monkeypatch.setenv("REPRO_LOG_LEVEL", "loud")
        with pytest.raises(ConfigError):
            eventlog_from_env()
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        assert eventlog_from_env().mode == "json"
        monkeypatch.setenv("REPRO_LOG", "off")
        assert eventlog_from_env().mode is None


# ----------------------------------------------------------------------
# epoch sampler + engine wiring
# ----------------------------------------------------------------------


def _tiny_cfg(**overrides) -> TraceConfig:
    kwargs = dict(
        system=make_tiny_system(),
        workload=make_tiny_kvs(),
        policy="ddio",
        sweeper=False,
        measure_requests=600,
    )
    kwargs.update(overrides)
    return TraceConfig(**kwargs)


def test_epoch_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_EPOCH", raising=False)
    assert epoch_from_env() is None
    monkeypatch.setenv("REPRO_EPOCH", "250")
    assert epoch_from_env() == 250
    monkeypatch.setenv("REPRO_EPOCH", "0")
    with pytest.raises(ConfigError):
        epoch_from_env()
    monkeypatch.setenv("REPRO_EPOCH", "soon")
    with pytest.raises(ConfigError):
        epoch_from_env()


def test_epoch_deltas_sum_to_aggregates():
    obs = ObsContext(epoch_requests=150)  # 600 measured -> 4 epochs
    trace = TraceSimulator(_tiny_cfg(), obs=obs).run()
    records = obs.timeline
    validate_timeline(records)
    assert len(records) == 4
    assert records[-1]["requests"] == 600
    assert _summed_dirty_deltas(records) == trace.cache_totals["evictions_dirty"]


def test_final_partial_epoch_sampled():
    obs = ObsContext(epoch_requests=250)  # 600 -> epochs at 250, 500, 600
    trace = TraceSimulator(_tiny_cfg(), obs=obs).run()
    assert [r["requests"] for r in obs.timeline] == [250, 500, 600]
    assert _summed_dirty_deltas(obs.timeline) == trace.cache_totals[
        "evictions_dirty"
    ]


def test_observed_run_bit_identical_to_plain_run():
    plain = TraceSimulator(_tiny_cfg()).run()
    observed = TraceSimulator(
        _tiny_cfg(), obs=ObsContext(epoch_requests=97)
    ).run()
    assert plain.traffic.snapshot() == observed.traffic.snapshot()
    assert plain.cache_totals == observed.cache_totals


def test_sampler_baseline_excludes_warmup():
    reg = MetricsRegistry()
    c = reg.counter("warm_total")
    c.inc(100)  # "warmup" activity
    sampler = EpochSampler(reg)
    sampler.baseline()
    c.inc(5)
    rec = sampler.sample(requests=10)
    assert rec["deltas"]["warm_total"] == 5.0
    assert sampler.summed_deltas("warm_total") == 5.0


def test_timeline_jsonl_round_trip(tmp_path):
    obs = ObsContext(epoch_requests=200)
    TraceSimulator(_tiny_cfg(), obs=obs).run()
    path = tmp_path / "tl.jsonl"
    write_jsonl(path, obs.timeline)
    loaded = load_jsonl(path)
    validate_timeline(loaded)
    assert loaded == json.loads(json.dumps(obs.timeline))


def test_validate_timeline_rejects_bad_records():
    with pytest.raises(ConfigError):
        validate_timeline([])
    with pytest.raises(ConfigError):
        validate_timeline([{"schema": 99, "epoch": 0, "requests": 1,
                            "metrics": {}, "deltas": {}}])
    with pytest.raises(ConfigError):  # wrong epoch index
        validate_timeline([{"schema": 1, "epoch": 3, "requests": 1,
                            "metrics": {}, "deltas": {}}])


# ----------------------------------------------------------------------
# manifests
# ----------------------------------------------------------------------


def _sample_manifest() -> RunManifest:
    manifest = RunManifest.create(run_label="unit", workers=2)
    manifest.code_salt = "deadbeef"
    manifest.wall_seconds = 1.5
    manifest.sim_seconds_total = 2.5
    manifest.points = [
        PointRecord(
            label="p0",
            fingerprint="fp0",
            system="SystemConfig(...)",
            workload="kvs|...",
            policy="ddio",
            sweeper=False,
            nic_tx_sweep=False,
            queued_depth=1,
            seed=42,
            warmup_requests=None,
            measure_requests=600,
            from_cache=False,
            sim_seconds=1.0,
            timeline_file="timelines/p0.jsonl",
        )
    ]
    return manifest


class TestManifest:
    def test_round_trip_preserves_config(self, tmp_path):
        manifest = _sample_manifest()
        path = tmp_path / "runs" / manifest.run_id / "manifest.json"
        manifest.write(path)
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()
        validate_manifest(loaded)

    def test_schema_mismatch_rejected(self, tmp_path):
        manifest = _sample_manifest()
        data = manifest.to_dict()
        data["schema"] = 99
        with pytest.raises(ConfigError, match="schema"):
            RunManifest.from_dict(data)

    def test_duplicate_labels_rejected(self):
        manifest = _sample_manifest()
        manifest.points.append(manifest.points[0])
        with pytest.raises(ConfigError, match="duplicate"):
            validate_manifest(manifest)

    def test_env_knobs(self, monkeypatch, tmp_path):
        assert manifests_enabled()
        monkeypatch.setenv("REPRO_NO_MANIFEST", "1")
        assert not manifests_enabled()
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "elsewhere"))
        assert runs_dir() == tmp_path / "elsewhere"


# ----------------------------------------------------------------------
# run_points provenance + timelines
# ----------------------------------------------------------------------


def _tiny_spec(label: str, **overrides) -> PointSpec:
    kwargs = dict(
        label=label,
        system=make_tiny_system(),
        workload=make_tiny_kvs(),
        policy="ddio",
        measure_requests=600,
    )
    kwargs.update(overrides)
    return PointSpec(**kwargs)


def test_run_points_manifest_and_cache_provenance(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_EPOCH", "200")
    specs = [_tiny_spec("a"), _tiny_spec("b", sweeper=True)]

    run_points(specs, max_workers=1, run_label="prov")
    first_dir = last_run_dir()
    first = RunManifest.load(first_dir / "manifest.json")
    validate_manifest(first)
    assert first.run_label == "prov"
    assert first.workers == 1
    assert [p.from_cache for p in first.points] == [False, False]
    for p in first.points:
        assert p.timeline_file is not None
        records = load_jsonl(first_dir / p.timeline_file)
        validate_timeline(records)
    assert first.env.get("REPRO_EPOCH") == "200"

    # identical grid again: all points served from cache, no timelines
    run_points(specs, max_workers=1, run_label="prov")
    second_dir = last_run_dir()
    assert second_dir != first_dir
    second = RunManifest.load(second_dir / "manifest.json")
    assert [p.from_cache for p in second.points] == [True, True]
    assert all(p.timeline_file is None for p in second.points)
    assert second.cached_points == 2
    # fingerprints identify the same simulations across runs
    assert [p.fingerprint for p in first.points] == [
        p.fingerprint for p in second.points
    ]


def test_run_spec_result_carries_timeline_only_with_run_dir(
    tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_EPOCH", "300")
    result = run_spec(_tiny_spec("solo"))
    assert result.timeline_file is None  # no run_dir to write into
    result = run_spec(_tiny_spec("solo"), run_dir=str(tmp_path))
    assert result.timeline_file is not None
    validate_timeline(load_jsonl(tmp_path / result.timeline_file))


def test_no_manifest_knob(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
    monkeypatch.setenv("REPRO_NO_MANIFEST", "1")
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    before = last_run_dir()
    run_points([_tiny_spec("x")], max_workers=1, run_label="nomanifest")
    assert last_run_dir() == before
    assert not (runs_dir()).exists()


# ----------------------------------------------------------------------
# acceptance: fig1 with REPRO_EPOCH — timelines match aggregates exactly
# ----------------------------------------------------------------------


def test_fig1_epoch_timelines_match_aggregates(tmp_path, monkeypatch):
    """ISSUE acceptance: summed per-epoch dirty-eviction deltas of every
    fig1 timeline equal that point's end-of-run aggregate, exactly."""
    from repro.experiments import fig1

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv("REPRO_EPOCH", "300")
    monkeypatch.setenv("REPRO_MEASURE", "0.1")  # floor of 500 req/point

    result = fig1.run(scale=0.1)
    run_dir = last_run_dir()
    assert run_dir is not None
    manifest = RunManifest.load(run_dir / "manifest.json")
    validate_manifest(manifest)
    assert len(manifest.points) == len(result.points)

    checked = 0
    for record in manifest.points:
        assert record.timeline_file is not None  # fresh cache -> all simulated
        records = load_jsonl(run_dir / record.timeline_file)
        validate_timeline(records)
        point = result.point(record.label)
        aggregate = point.trace.cache_totals["evictions_dirty"]
        assert _summed_dirty_deltas(records) == aggregate
        checked += 1
    assert checked == len(result.points)


class TestLogFile:
    """REPRO_LOG_FILE: durable event history for daemons."""

    def test_log_file_enables_text_mode(self, tmp_path, monkeypatch):
        path = tmp_path / "events.log"
        monkeypatch.delenv("REPRO_LOG", raising=False)
        monkeypatch.setenv("REPRO_LOG_FILE", str(path))
        log = eventlog_from_env()
        assert log.enabled and log.mode == "text"
        log.info("serve.start", port=1)
        log.close()
        text = path.read_text()
        assert text.count("\n") == 1  # one event, one atomic line
        assert "serve.start" in text and "port=1" in text

    def test_log_file_appends_across_opens(self, tmp_path, monkeypatch):
        path = tmp_path / "events.log"
        monkeypatch.setenv("REPRO_LOG", "json")
        monkeypatch.setenv("REPRO_LOG_FILE", str(path))
        for n in (1, 2):
            log = eventlog_from_env()
            log.info("run.start", n=n)
            log.close()
        records = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert [r["n"] for r in records] == [1, 2]
        assert all(r["event"] == "run.start" for r in records)

    def test_explicit_off_beats_log_file(self, tmp_path, monkeypatch):
        path = tmp_path / "events.log"
        monkeypatch.setenv("REPRO_LOG", "off")
        monkeypatch.setenv("REPRO_LOG_FILE", str(path))
        log = eventlog_from_env()
        assert not log.enabled
        log.info("quiet")
        log.close()
        assert path.read_text() == ""

    def test_get_event_log_rebuilds_and_closes_on_env_change(
        self, tmp_path, monkeypatch
    ):
        from repro.obs.events import get_event_log

        path = tmp_path / "events.log"
        monkeypatch.setenv("REPRO_LOG_FILE", str(path))
        first = get_event_log()
        first.info("point.finish", label="a")
        monkeypatch.delenv("REPRO_LOG_FILE")
        second = get_event_log()
        assert second is not first
        assert first.stream.closed  # rebuilt log closed the owned stream
        assert "point.finish" in path.read_text()
