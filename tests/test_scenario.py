"""Tests for the scenario DSL (repro.scenario) and the policy zoo.

Four layers:

* document validation — every malformed document fails with an error
  naming the exact key path (the serve layer renders these as 400s);
* compilation — sweep expansion order, named-block resolution, default
  layering (point > settings > document), label uniqueness;
* the zoo policies — occamy/rdca are deterministic, engine-equivalent
  (see also test_batch_equivalence), and measurably distinct from DDIO;
* serve integration — a scenario document submitted via ``POST /jobs``
  compiles to the identical grid (hypothesis property over random
  documents) and serves rows bit-identical to a local ``run_points``
  of the same compiled specs (the end-to-end round trip).
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import pointcache
from repro.engine.parallel import run_points
from repro.engine.tracer import TraceConfig, TraceSimulator
from repro.errors import ConfigError
from repro.experiments.common import ExperimentSettings, point_row, policy_label
from repro.nic import OccamyPolicy, RdcaPolicy, make_policy
from repro.nic.arrivals import BurstProfile
from repro.obs.manifest import RunManifest, runs_dir
from repro.report.timeline import list_runs
from repro.scenario import (
    POLICY_SPECS,
    SCHEMA_VERSION,
    ScenarioError,
    compile_scenario,
    load_scenario,
    scenario_from_dict,
)
from repro.scenario.__main__ import main as scenario_main
from repro.serve import JobScheduler, ServeClient, create_server, parse_job_request
from repro.serve.jobs import BadRequest
from tests.conftest import make_tiny_kvs, make_tiny_system

SCALE = 0.02


def zoo_doc(**overrides):
    """A small but fully-featured valid document (fast to compile)."""
    doc = {
        "schema_version": SCHEMA_VERSION,
        "name": "unit",
        "scale": SCALE,
        "measure": 0.01,
        "seed": 7,
        "workloads": {"mica": {"kind": "kvs", "packet_bytes": 512}},
        "policies": {
            "swept": {"policy": "ddio", "ways": 2, "sweeper": True}
        },
        "arrivals": {"bursty": {"low": 1, "high": 9, "window": 12, "seed": 3}},
        "points": [
            {
                "workload": "mica",
                "buffers": 64,
                "label": "pt",
                "sweep": {"policy": ["ddio", "occamy"], "queued_depth": [1, 4]},
            }
        ],
    }
    doc.update(overrides)
    return doc


class TestValidation:
    @pytest.mark.parametrize(
        "mutate, path_fragment",
        [
            (lambda d: d.pop("schema_version"), "scenario.schema_version"),
            (lambda d: d.update(schema_version=99), "scenario.schema_version"),
            (lambda d: d.pop("name"), "scenario.name"),
            (lambda d: d.update(extra=1), "'extra'"),
            (lambda d: d.update(scale=2.0), "scenario.scale"),
            (lambda d: d.update(measure=0), "scenario.measure"),
            (lambda d: d.pop("points"), "scenario.points"),
            (lambda d: d.update(points=[]), "scenario.points"),
            (
                lambda d: d["points"][0].update(swepper=True),
                "points[0]",
            ),
            (
                lambda d: d["points"][0]["sweep"].update(wayz=[1]),
                "points[0].sweep.wayz",
            ),
            (
                lambda d: d["points"][0]["sweep"].update(label=["a"]),
                "points[0].sweep.label",
            ),
            (
                lambda d: d["points"][0]["sweep"].update(packet_bytes=[]),
                "points[0].sweep.packet_bytes",
            ),
            (
                lambda d: d["points"][0]["sweep"].update(packet_bytes=[[64]]),
                "points[0].sweep.packet_bytes[0]",
            ),
            (
                # "buffers" is set directly on the template, so sweeping
                # it too must be rejected as a conflict
                lambda d: d["points"][0]["sweep"].update(buffers=[32, 64]),
                "points[0].sweep.buffers",
            ),
            (
                lambda d: d["workloads"].update(bad={"kind": "gpu"}),
                "workloads.bad.kind",
            ),
            (
                lambda d: d["policies"].update(bad={"policy": "magic"}),
                "policies.bad.policy",
            ),
            (
                lambda d: d["policies"]["swept"].update(sweeper=1),
                "policies.swept.sweeper",
            ),
            (
                lambda d: d["arrivals"].update(bad={"lo": 1}),
                "arrivals.bad",
            ),
            (
                lambda d: d["observers"].update(bad={"sets": "many"})
                if "observers" in d
                else d.update(observers={"bad": {"sets": "many"}}),
                "observers.bad.sets",
            ),
        ],
    )
    def test_bad_documents_name_their_key_path(self, mutate, path_fragment):
        doc = zoo_doc()
        mutate(doc)
        with pytest.raises(ScenarioError) as err:
            compile_scenario(scenario_from_dict(doc))
        assert path_fragment in str(err.value), str(err.value)

    def test_unresolved_references_name_the_point(self):
        for key, value in (
            ("workload", "nope"),
            ("policy", "nope"),
            ("arrival", "nope"),
            ("observer", "nope"),
        ):
            doc = zoo_doc()
            doc["points"][0].pop("sweep")
            doc["points"][0][key] = value
            with pytest.raises(ScenarioError) as err:
                compile_scenario(scenario_from_dict(doc))
            assert f"points[0].{key}" in str(err.value)
            assert "nope" in str(err.value)

    def test_duplicate_labels_rejected_with_hint(self):
        doc = zoo_doc()
        doc["points"][0].pop("sweep")
        doc["points"].append(dict(doc["points"][0]))
        with pytest.raises(ScenarioError) as err:
            compile_scenario(scenario_from_dict(doc))
        assert "duplicate point label" in str(err.value)

    def test_arrival_and_inline_burst_conflict(self):
        doc = zoo_doc()
        doc["points"][0].pop("sweep")
        doc["points"][0]["arrival"] = "bursty"
        doc["points"][0]["burst"] = {"low": 1}
        with pytest.raises(ScenarioError) as err:
            compile_scenario(scenario_from_dict(doc))
        assert "points[0].arrival" in str(err.value)


class TestCompile:
    def test_sweep_expansion_order_and_labels(self):
        compiled = compile_scenario(scenario_from_dict(zoo_doc()))
        assert [s.label for s in compiled.specs] == [
            "pt policy=ddio queued_depth=1",
            "pt policy=ddio queued_depth=4",
            "pt policy=occamy queued_depth=1",
            "pt policy=occamy queued_depth=4",
        ]
        assert [s.policy for s in compiled.specs] == [
            "ddio", "ddio", "occamy", "occamy",
        ]
        assert compiled.run_label == "scenario:unit"
        assert compiled.scale == SCALE

    def test_named_blocks_resolve_and_explicit_keys_win(self):
        doc = zoo_doc()
        doc["points"] = [
            {"label": "a", "policy": "swept"},
            {"label": "b", "policy": "swept", "sweeper": False, "ways": 4},
        ]
        a, b = compile_scenario(scenario_from_dict(doc)).specs
        assert a.policy == "ddio" and a.sweeper is True
        assert a.system.nic.ddio_ways == 2
        # explicit point keys beat the named block's fills
        assert b.sweeper is False
        assert b.system.nic.ddio_ways == 4

    def test_arrival_block_becomes_burst_profile(self):
        doc = zoo_doc()
        doc["points"] = [{"label": "a", "arrival": "bursty"}]
        (spec,) = compile_scenario(scenario_from_dict(doc)).specs
        assert spec.burst == BurstProfile(low=1, high=9, window=12, seed=3)

    def test_default_layering_doc_settings_point(self):
        doc = zoo_doc()
        doc["points"] = [
            {"label": "doc-defaults"},
            {"label": "explicit", "scale": 0.03, "seed": 11},
        ]
        compiled = compile_scenario(scenario_from_dict(doc))
        assert compiled.specs[0].seed == 7  # document default
        assert compiled.specs[1].seed == 11  # point override
        # settings (the serve fidelity knobs) override document defaults
        # but never explicit per-point values
        tuned = compile_scenario(
            scenario_from_dict(doc),
            settings=ExperimentSettings(scale=0.04, measure_multiplier=0.01),
        )
        assert tuned.scale == 0.04
        assert tuned.specs[0].system.cpu.num_cores == compile_scenario(
            scenario_from_dict({**doc, "scale": 0.04})
        ).specs[0].system.cpu.num_cores
        assert tuned.specs[1].seed == 11

    def test_compilation_is_deterministic(self):
        fps = [
            [pointcache.fingerprint(s) for s in
             compile_scenario(scenario_from_dict(zoo_doc())).specs]
            for _ in range(2)
        ]
        assert fps[0] == fps[1]

    def test_policy_participates_in_fingerprint(self):
        compiled = compile_scenario(scenario_from_dict(zoo_doc()))
        by_policy = {}
        for spec in compiled.specs:
            by_policy.setdefault(spec.policy, set()).add(
                pointcache.fingerprint(spec)
            )
        assert not (by_policy["ddio"] & by_policy["occamy"])

    def test_json_and_toml_files_load(self, tmp_path):
        doc = zoo_doc()
        jpath = tmp_path / "s.json"
        jpath.write_text(json.dumps(doc))
        from_json = compile_scenario(load_scenario(jpath))
        assert len(from_json.specs) == 4

        tomllib = pytest.importorskip("tomllib")
        del tomllib
        toml_lines = [
            f"schema_version = {SCHEMA_VERSION}",
            'name = "unit"',
            f"scale = {SCALE}",
            "measure = 0.01",
            "seed = 7",
            "[workloads.mica]",
            'kind = "kvs"',
            "packet_bytes = 512",
            "[[points]]",
            'workload = "mica"',
            "buffers = 64",
            'label = "pt"',
            "[points.sweep]",
            'policy = ["ddio", "occamy"]',
            "queued_depth = [1, 4]",
        ]
        tpath = tmp_path / "s.toml"
        tpath.write_text("\n".join(toml_lines) + "\n")
        from_toml = compile_scenario(load_scenario(tpath))
        assert [pointcache.fingerprint(s) for s in from_toml.specs] == [
            pointcache.fingerprint(s) for s in from_json.specs
        ]

    def test_bad_suffix_and_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError):
            load_scenario(tmp_path / "missing.toml")
        bad = tmp_path / "s.yaml"
        bad.write_text("{}")
        with pytest.raises(ScenarioError) as err:
            load_scenario(bad)
        assert ".toml or .json" in str(err.value)

    def test_example_scenarios_compile(self):
        pytest.importorskip("tomllib")
        from repro.experiments.zoo import SCENARIO_PATH

        zoo = compile_scenario(load_scenario(SCENARIO_PATH))
        assert len(zoo.specs) == 10
        assert sorted({s.policy for s in zoo.specs}) == sorted(POLICY_SPECS)
        assert {s.queued_depth for s in zoo.specs} == {1, 16}

        mica = compile_scenario(
            load_scenario(SCENARIO_PATH.parent / "bursty_diurnal_mica.toml")
        )
        assert len(mica.specs) == 6
        assert all(s.burst is not None for s in mica.specs)
        assert {s.policy for s in mica.specs} == {"ddio", "occamy"}


class TestZooPolicies:
    def _run(self, policy, engine="object", sweeper=False):
        cfg = TraceConfig(
            system=make_tiny_system(num_cores=2),
            workload=make_tiny_kvs(),
            policy=policy,
            sweeper=sweeper,
            warmup_requests=128,
            measure_requests=192,
            engine=engine,
        )
        return TraceSimulator(cfg).run()

    def test_make_policy_builds_zoo_members(self):
        occamy = make_policy("occamy", 4)
        assert isinstance(occamy, OccamyPolicy)
        assert occamy.ways == 4 and "Occamy" in occamy.name
        rdca = make_policy("rdca", 2)
        assert isinstance(rdca, RdcaPolicy)
        with pytest.raises(ConfigError) as err:
            make_policy("magic")
        # the error teaches the full vocabulary, zoo included
        assert "occamy" in str(err.value) and "rdca" in str(err.value)

    def test_policy_labels(self):
        assert policy_label("occamy", 2, False) == "Occamy 2 Ways"
        assert policy_label("rdca", 4, True) == "RDCA 4 Ways + Sweeper"
        with pytest.raises(ConfigError):
            policy_label("magic", 2, False)

    @pytest.mark.parametrize("policy", ["occamy", "rdca"])
    def test_deterministic_and_distinct_from_ddio(self, policy):
        ddio = self._run("ddio")
        first = self._run(policy)
        again = self._run(policy)
        assert first.traffic.snapshot() == again.traffic.snapshot()
        assert first.cache_totals == again.cache_totals
        assert first.traffic.snapshot() != ddio.traffic.snapshot(), (
            f"{policy} is indistinguishable from ddio on the tiny system"
        )

    def test_occamy_actually_preempts_and_rdca_bounds_pool(self):
        system = make_tiny_system(num_cores=2)
        cfg = TraceConfig(
            system=system,
            workload=make_tiny_kvs(),
            policy="occamy",
            warmup_requests=64,
            measure_requests=128,
            engine="object",
        )
        sim = TraceSimulator(cfg)
        sim.run()
        assert sim.policy.preempted > 0

        cfg2 = TraceConfig(
            system=system,
            workload=make_tiny_kvs(),
            policy="rdca",
            warmup_requests=64,
            measure_requests=128,
            engine="object",
        )
        sim2 = TraceSimulator(cfg2)
        sim2.run()
        assert sim2.policy.pool_evictions > 0
        for pool in sim2.policy._pool.values():
            assert len(pool) <= RdcaPolicy.pool_buffers

    def test_zoo_policies_work_with_sweeper(self):
        # the cascade rules (and clsweep) must compose with zoo policies
        plain = self._run("occamy", sweeper=False)
        swept = self._run("occamy", sweeper=True)
        assert swept.sweep_instructions > 0
        assert plain.traffic.snapshot() != swept.traffic.snapshot()


# --- hypothesis: serve-compiled == locally-compiled, for any document ----

_policies = st.lists(
    st.sampled_from(sorted(POLICY_SPECS)), min_size=1, max_size=3, unique=True
)
_depths = st.lists(
    st.integers(min_value=1, max_value=16), min_size=1, max_size=2, unique=True
)


class TestServeScenario:
    @given(
        policies=_policies,
        depths=_depths,
        buffers=st.sampled_from([32, 64, 128]),
        seed=st.integers(min_value=0, max_value=2**31),
        bursty=st.booleans(),
    )
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_any_document_compiles_identically_via_serve(
        self, policies, depths, buffers, seed, bursty
    ):
        """POST /jobs {"scenario": ...} builds the exact local grid.

        Combined with run_points determinism (asserted end-to-end
        below and across the serve/cluster suites), this is the
        round-trip property: any DSL-built scenario served through the
        API simulates precisely the specs a local run would.
        """
        doc = zoo_doc(seed=seed)
        doc["points"][0]["sweep"] = {
            "policy": policies,
            "queued_depth": depths,
        }
        doc["points"][0]["buffers"] = buffers
        if bursty:
            doc["points"][0]["arrival"] = "bursty"
        local = compile_scenario(scenario_from_dict(doc))
        request = parse_job_request({"scenario": doc})
        assert request.name == "scenario:unit"
        assert request.scale == local.scale
        assert [s.label for s in request.specs] == [
            s.label for s in local.specs
        ]
        assert [pointcache.fingerprint(s) for s in request.specs] == [
            pointcache.fingerprint(s) for s in local.specs
        ]

    def test_exactly_one_body_kind(self):
        with pytest.raises(BadRequest):
            parse_job_request({"scenario": zoo_doc(), "points": [{}]})
        with pytest.raises(BadRequest):
            parse_job_request({"experiment": "fig1", "scenario": zoo_doc()})

    def test_scenario_errors_become_bad_requests_with_paths(self):
        doc = zoo_doc()
        doc["points"][0]["sweep"]["wayz"] = [1, 2]
        with pytest.raises(BadRequest) as err:
            parse_job_request({"scenario": doc})
        assert "points[0].sweep.wayz" in str(err.value)
        assert "allowed" in str(err.value)

    def test_top_level_fidelity_overrides(self):
        request = parse_job_request(
            {"scenario": zoo_doc(), "scale": 0.03, "measure": 0.01}
        )
        assert request.scale == 0.03
        local = compile_scenario(
            scenario_from_dict(zoo_doc()),
            settings=ExperimentSettings(scale=0.03, measure_multiplier=0.01),
        )
        assert [pointcache.fingerprint(s) for s in request.specs] == [
            pointcache.fingerprint(s) for s in local.specs
        ]

    def test_served_scenario_rows_bit_identical_to_local(
        self, tmp_path, monkeypatch
    ):
        """The end-to-end satellite: POST /jobs -> GET /result equals
        a local run_points of the same compiled specs, byte for byte
        (modulo wall-clock sim_seconds)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pointcache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        doc = zoo_doc()
        doc["points"][0]["sweep"] = {"policy": ["ddio", "occamy", "rdca"]}
        doc["points"][0]["arrival"] = "bursty"

        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        local = compile_scenario(scenario_from_dict(doc))
        local_rows = [
            point_row(p, local.scale)
            for p in run_points(local.specs, max_workers=1)
        ]
        monkeypatch.delenv("REPRO_NO_CACHE")

        scheduler = JobScheduler(workers=1)
        server = create_server(port=0, scheduler=scheduler)
        scheduler.start()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            client = ServeClient(f"http://{host}:{port}")
            job = client.submit_scenario(doc)
            snapshot = client.wait(job["id"], timeout=600)
            assert snapshot["state"] == "done", snapshot
            result = client.result(job["id"])
            assert result["figure"] == "scenario:unit"
            assert result["scale"] == local.scale

            def strip(row):
                return {
                    k: v
                    for k, v in row.items()
                    if k not in ("sim_seconds", "from_cache")
                }

            assert json.dumps(
                [strip(r) for r in result["rows"]], sort_keys=True
            ) == json.dumps(
                [strip(r) for r in local_rows], sort_keys=True
            )

            # scenario-born runs are called out by timeline --list
            assert snapshot["run_id"]
            run_dir = runs_dir() / snapshot["run_id"]
            manifest = RunManifest.load(run_dir / "manifest.json")
            assert manifest.run_label == "serve-scenario:unit"
            listing = list_runs(runs_dir())
            assert "scenario=unit" in listing
            assert "policies=ddio/occamy/rdca" in listing
        finally:
            server.shutdown()
            server.server_close()
            scheduler.stop(wait=False)


class TestScenarioCli:
    def _write(self, tmp_path, doc):
        path = tmp_path / "s.json"
        path.write_text(json.dumps(doc))
        return path

    def test_compile_json_output(self, tmp_path, capsys):
        path = self._write(tmp_path, zoo_doc())
        assert scenario_main(["compile", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["name"] == "unit"
        assert len(payload["points"]) == 4
        assert all(p["fingerprint"] for p in payload["points"])

    def test_compile_human_output(self, tmp_path, capsys):
        path = self._write(tmp_path, zoo_doc())
        assert scenario_main(["compile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "policy-zoo" not in out  # this is the unit doc
        assert "scenario 'unit': 4 points" in out

    def test_errors_exit_2_with_path(self, tmp_path, capsys):
        doc = zoo_doc()
        doc["points"][0]["sweep"]["wayz"] = [1]
        path = self._write(tmp_path, doc)
        assert scenario_main(["compile", str(path)]) == 2
        assert "points[0].sweep.wayz" in capsys.readouterr().err

    def test_compile_fidelity_overrides(self, tmp_path, capsys):
        path = self._write(tmp_path, zoo_doc())
        assert (
            scenario_main(
                ["compile", str(path), "--json", "--scale", "0.03"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["scale"] == 0.03

    def test_list_policies(self, capsys):
        assert scenario_main(["list-policies"]) == 0
        out = capsys.readouterr().out
        for name in POLICY_SPECS:
            assert name in out

    def test_run_emits_shared_schema(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        doc = zoo_doc()
        doc["points"] = [{"label": "one", "buffers": 64, "policy": "rdca"}]
        path = self._write(tmp_path, doc)
        assert scenario_main(["run", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["figure"] == "scenario:unit"
        assert [r["label"] for r in payload["rows"]] == ["one"]
        assert payload["rows"][0]["breakdown"]
