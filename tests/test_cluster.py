"""Tests for the ``repro.cluster`` distributed worker fleet.

Four layers:

* protocol units — payload transport, message validation, env knobs;
* coordinator units — register / lease / heartbeat / complete / fail /
  expire driven directly, with futures observed from the scheduler's
  side of the seam;
* agent tests over :class:`LocalTransport` — the pull loop, ``--once``,
  drain-release, failure reporting, re-registration;
* integration — ``JobScheduler(backend="cluster"|"hybrid")`` end to
  end, including the lease-expiry acceptance test (a worker leases
  points and goes silent; the points requeue, a healthy worker
  finishes, and the result is bit-identical to ``run_points``) and a
  subprocess e2e that kills a real worker with an injected
  ``worker_crash`` fault over real HTTP.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cluster import protocol
from repro.cluster.coordinator import (
    ClusterCoordinator,
    LeaseExpired,
    WorkerLeaseError,
    WorkerPointError,
)
from repro.cluster.worker import ClusterClient, LocalTransport, WorkerAgent
from repro.engine import faults, pointcache
from repro.engine.parallel import run_points
from repro.errors import ConfigError
from repro.experiments.common import (
    ExperimentSettings,
    kvs_system,
    kvs_workload,
    point_row,
    point_spec,
)
from repro.obs.manifest import RunManifest, runs_dir
from repro.obs.validate import validate_run_dir
from repro.serve import JobScheduler, ServeError, create_server
from repro.serve.jobs import JobRequest, TERMINAL_STATES

SCALE = 0.05
SETTINGS = ExperimentSettings(scale=SCALE, measure_multiplier=0.1)
SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def one_spec(seed: int, label: str = ""):
    return point_spec(
        label or f"s{seed}",
        kvs_system(SCALE, 64, 2, 512),
        kvs_workload(0.02, 512),
        "ddio",
        settings=SETTINGS,
        seed=seed,
    )


class FakeResult:
    """The minimal result surface the cluster path touches (picklable)."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.sim_seconds = 0.0
        self.from_cache = False
        self.timeline_file = None
        self.worker_id = None


def wait_terminal(jobs, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    for job in jobs:
        while job.state not in TERMINAL_STATES:
            assert time.monotonic() < deadline, f"{job.id} stuck {job.state}"
            time.sleep(0.005)


def job_manifest(job):
    assert job.run_id, "job finished without a run_id"
    run_dir = runs_dir() / job.run_id
    manifest = RunManifest.load(run_dir / "manifest.json")
    validate_run_dir(run_dir)
    return manifest


def register(coord: ClusterCoordinator, capacity: int = 1, name=None) -> str:
    reply = coord.register(
        protocol.register_request(
            code_salt=pointcache.code_salt(),
            capacity=capacity,
            host="testhost",
            pid=1234,
            name=name,
        )
    )
    return reply["worker_id"]


def spawn_worker(url: str, *args: str, env_extra=None) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_NO_CACHE"] = "1"
    env.update(env_extra or {})
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cluster.worker",
            "--coordinator",
            url,
            "--capacity",
            "1",
            *args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


# ----------------------------------------------------------------------
# protocol units
# ----------------------------------------------------------------------


class TestProtocol:
    def test_payload_round_trip(self):
        spec = one_spec(1, "p1")
        decoded = protocol.decode_payload(protocol.encode_payload(spec))
        assert decoded.label == "p1"
        assert pointcache.fingerprint(decoded) == pointcache.fingerprint(spec)

    def test_mangled_payload_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="undecodable"):
            protocol.decode_payload("not!base64@pickle")

    def test_version_envelope(self):
        with pytest.raises(protocol.ProtocolError, match="JSON object"):
            protocol.check_version([1, 2])
        with pytest.raises(protocol.ProtocolError, match="unsupported"):
            protocol.check_version({"protocol": 99})
        body = {"protocol": protocol.PROTOCOL_VERSION, "x": 1}
        assert protocol.check_version(body) is body

    def test_message_field_validation(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.worker_id_of({"worker_id": ""})
        with pytest.raises(protocol.ProtocolError):
            protocol.string_list({"lease_ids": [1]}, "lease_ids")
        assert protocol.string_list({}, "released") == []

    def test_builders_carry_version(self):
        messages = [
            protocol.register_request("salt", 2, "h", 1, name="w"),
            protocol.lease_request("w-1", 2),
            protocol.heartbeat_request("w-1", ["l-1"]),
            protocol.complete_request("w-1", "l-1", []),
            protocol.fail_request("w-1", "l-1", "boom"),
        ]
        for message in messages:
            assert message["protocol"] == protocol.PROTOCOL_VERSION

    def test_env_knobs(self, monkeypatch):
        assert protocol.lease_ttl_s() == protocol.DEFAULT_LEASE_TTL_S
        monkeypatch.setenv("REPRO_CLUSTER_LEASE_TTL_S", "3.0")
        assert protocol.lease_ttl_s() == 3.0
        assert protocol.heartbeat_s() == pytest.approx(1.0)
        monkeypatch.setenv("REPRO_CLUSTER_HEARTBEAT_S", "0.4")
        assert protocol.heartbeat_s() == 0.4
        monkeypatch.setenv("REPRO_CLUSTER_BATCH", "7")
        assert protocol.batch_size() == 7
        monkeypatch.setenv("REPRO_CLUSTER_POLL_S", "0.1")
        assert protocol.poll_s() == 0.1

    def test_env_knob_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_LEASE_TTL_S", "zero")
        with pytest.raises(ConfigError):
            protocol.lease_ttl_s()
        monkeypatch.setenv("REPRO_CLUSTER_LEASE_TTL_S", "-1")
        with pytest.raises(ConfigError):
            protocol.lease_ttl_s()
        monkeypatch.setenv("REPRO_CLUSTER_BATCH", "0")
        with pytest.raises(ConfigError):
            protocol.batch_size()
        monkeypatch.setenv("REPRO_CLUSTER_BATCH", "many")
        with pytest.raises(ConfigError):
            protocol.batch_size()


# ----------------------------------------------------------------------
# coordinator units (monitor thread never started; expiry driven by hand)
# ----------------------------------------------------------------------


class TestCoordinator:
    def test_register_pushes_fleet_config(self):
        coord = ClusterCoordinator(lease_ttl=9.0, heartbeat=3.0, batch=2)
        reply = coord.register(
            protocol.register_request(
                pointcache.code_salt(), 4, "h", 7, name="w0"
            )
        )
        assert reply["worker_id"].startswith("w-")
        assert reply["lease_ttl_s"] == 9.0
        assert reply["heartbeat_s"] == 3.0
        assert reply["batch"] == 2
        snapshot = coord.workers_snapshot()[0]
        assert snapshot["name"] == "w0"
        assert snapshot["capacity"] == 4
        assert snapshot["state"] == "idle"

    def test_register_salt_mismatch_rejected(self):
        coord = ClusterCoordinator()
        with pytest.raises(protocol.SaltMismatch, match="different source"):
            coord.register(
                protocol.register_request("not-the-salt", 1, "h", 1)
            )

    def test_unknown_worker_rejected(self):
        coord = ClusterCoordinator()
        with pytest.raises(protocol.UnknownWorker):
            coord.lease(protocol.lease_request("w-missing", 1))

    def test_lease_empty_queue(self):
        coord = ClusterCoordinator()
        wid = register(coord)
        grant = coord.lease(protocol.lease_request(wid, 1))
        assert grant["lease_id"] is None
        assert grant["points"] == []
        assert grant["draining"] is False

    def test_lease_and_complete_resolve_futures(self):
        coord = ClusterCoordinator(lease_ttl=30.0, batch=2)
        specs = [one_spec(i, f"p{i}") for i in (1, 2, 3)]
        futures = [coord.submit(spec, None) for spec in specs]
        assert coord.pending_count() == 3
        wid = register(coord, capacity=8)
        grant = coord.lease(protocol.lease_request(wid, 8))
        assert len(grant["points"]) == 2  # batch-bounded
        assert coord.pending_count() == 1
        assert futures[0].running() and futures[1].running()
        results = [
            {
                "fingerprint": p["fingerprint"],
                "payload": protocol.encode_payload(FakeResult(p["label"])),
            }
            for p in grant["points"]
        ]
        reply = coord.complete(
            protocol.complete_request(wid, grant["lease_id"], results)
        )
        assert reply["accepted"] is True
        assert reply["resolved"] == 2
        assert reply["late"] == 0
        for future, spec in zip(futures[:2], specs[:2]):
            result = future.result(timeout=1)
            assert result.label == spec.label
            assert result.worker_id == wid  # provenance stamped on upload
        assert not futures[2].done()
        snapshot = coord.workers_snapshot()[0]
        assert snapshot["points_done"] == 2
        assert snapshot["state"] == "idle"
        text = coord.registry.render_text()
        assert "cluster_points_remote_total 2" in text
        assert "cluster_leases_granted_total 1" in text

    def test_point_failure_charges_future(self):
        coord = ClusterCoordinator(lease_ttl=30.0, batch=4)
        future = coord.submit(one_spec(1, "p1"), None)
        wid = register(coord)
        grant = coord.lease(protocol.lease_request(wid, 4))
        coord.complete(
            protocol.complete_request(
                wid,
                grant["lease_id"],
                [],
                failures=[
                    {
                        "fingerprint": grant["points"][0]["fingerprint"],
                        "error": "RuntimeError: boom",
                    }
                ],
            )
        )
        with pytest.raises(WorkerPointError, match="boom") as err:
            future.result(timeout=1)
        assert wid in str(err.value)
        assert (
            "cluster_point_failures_total 1" in coord.registry.render_text()
        )

    def test_fail_aborts_whole_lease(self):
        coord = ClusterCoordinator(lease_ttl=30.0, batch=4)
        futures = [coord.submit(one_spec(i, f"p{i}"), None) for i in (1, 2)]
        wid = register(coord)
        grant = coord.lease(protocol.lease_request(wid, 4))
        reply = coord.fail(
            protocol.fail_request(wid, grant["lease_id"], "pool collapsed")
        )
        assert reply["failed"] == 2
        for future in futures:
            with pytest.raises(WorkerLeaseError, match="pool collapsed"):
                future.result(timeout=1)

    def test_drain_release_requeues_uncharged(self):
        coord = ClusterCoordinator(lease_ttl=30.0, batch=4)
        specs = [one_spec(i, f"p{i}") for i in (1, 2)]
        futures = [coord.submit(spec, None) for spec in specs]
        wid = register(coord)
        grant = coord.lease(protocol.lease_request(wid, 4))
        fps = [p["fingerprint"] for p in grant["points"]]
        reply = coord.complete(
            protocol.complete_request(
                wid, grant["lease_id"], [], released=fps
            )
        )
        assert reply["accepted"] is True and reply["resolved"] == 0
        assert coord.pending_count() == 2
        assert not any(f.done() for f in futures)
        # A second worker re-leases the same (already-claimed) entries —
        # set_running_or_notify_cancel must not be called twice.
        wid2 = register(coord)
        grant2 = coord.lease(protocol.lease_request(wid2, 4))
        assert sorted(p["fingerprint"] for p in grant2["points"]) == sorted(fps)
        assert (
            "cluster_points_released_total 2" in coord.registry.render_text()
        )

    def test_heartbeat_renews_deadline(self):
        coord = ClusterCoordinator(lease_ttl=30.0, batch=4)
        coord.submit(one_spec(1, "p1"), None)
        wid = register(coord)
        grant = coord.lease(protocol.lease_request(wid, 4))
        lease_id = grant["lease_id"]
        coord._leases[lease_id].deadline_unix = 1.0  # long overdue
        reply = coord.heartbeat(protocol.heartbeat_request(wid, [lease_id]))
        assert reply["renewed"] == [lease_id]
        assert coord.expire_stale() == 0  # renewal moved the deadline out

    def test_expiry_charges_lease_expired_and_late_upload_caches(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "pointcache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        coord = ClusterCoordinator(lease_ttl=30.0, batch=4)
        future = coord.submit(one_spec(1, "p1"), None)
        wid = register(coord)
        grant = coord.lease(protocol.lease_request(wid, 4))
        assert coord.expire_stale(now=time.time() + 31) == 1
        with pytest.raises(LeaseExpired, match="presumed dead"):
            future.result(timeout=1)
        assert coord.workers_snapshot()[0]["state"] == "lost"
        # The worker was only slow, not dead: its next heartbeat revives
        # liveness but reports the lease as gone...
        reply = coord.heartbeat(
            protocol.heartbeat_request(wid, [grant["lease_id"]])
        )
        assert reply["expired"] == [grant["lease_id"]]
        assert coord.workers_snapshot()[0]["state"] == "idle"
        # ...and its late upload still lands in the point cache, so the
        # scheduler's retry becomes a cache hit instead of a re-run.
        fp = grant["points"][0]["fingerprint"]
        reply = coord.complete(
            protocol.complete_request(
                wid,
                grant["lease_id"],
                [
                    {
                        "fingerprint": fp,
                        "payload": protocol.encode_payload(FakeResult("p1")),
                    }
                ],
            )
        )
        assert reply["accepted"] is False
        assert reply["late"] == 1
        assert pointcache.load(fp) is not None
        text = coord.registry.render_text()
        assert "cluster_lease_expired_total 1" in text
        assert "cluster_late_results_total 1" in text

    def test_stats_and_worker_gauges(self):
        coord = ClusterCoordinator(lease_ttl=30.0, batch=4)
        coord.submit(one_spec(1, "p1"), None)
        register(coord)
        stats = coord.stats()
        assert stats["pending_points"] == 1
        assert stats["active_leases"] == 0
        assert stats["workers"] == 1
        assert stats["draining"] is False
        assert stats["policy"] == "priority"
        assert stats["pending_by_tenant"] == {"default": 1}
        # The sharded breakdown must account for every pending point.
        assert len(stats["shards"]) == coord.nshards
        assert sum(s["pending_points"] for s in stats["shards"]) == 1
        assert stats["speculation"]["enabled"] is True
        assert stats["speculation"]["delay_s"] is None  # no samples yet
        text = coord.registry.render_text()  # runs the pull collector
        assert "cluster_pending_points 1" in text
        assert 'cluster_workers{state="idle"} 1' in text
        assert 'cluster_workers{state="lost"} 0' in text


# ----------------------------------------------------------------------
# worker agent over LocalTransport
# ----------------------------------------------------------------------


class TestWorkerAgent:
    def test_once_mode_processes_one_lease(self):
        coord = ClusterCoordinator(lease_ttl=30.0, batch=4)
        specs = [one_spec(i, f"p{i}") for i in (1, 2)]
        futures = [coord.submit(spec, None) for spec in specs]
        agent = WorkerAgent(
            LocalTransport(coord),
            capacity=2,  # lease size = min(batch, capacity)
            once=True,
            name="once",
            simulate=lambda spec: FakeResult(spec.label),
        )
        assert agent.run() == 0
        assert agent.leases_done == 1
        assert agent.points_done == 2
        assert [f.result(timeout=1).label for f in futures] == ["p1", "p2"]
        assert coord.workers_snapshot()[0]["name"] == "once"

    def test_capacity_validation(self):
        with pytest.raises(protocol.ProtocolError, match=">= 1"):
            WorkerAgent(LocalTransport(ClusterCoordinator()), capacity=0)

    def test_simulation_error_reported_per_point(self):
        coord = ClusterCoordinator(lease_ttl=30.0, batch=4)
        good = coord.submit(one_spec(1, "good"), None)
        bad = coord.submit(one_spec(2, "bad"), None)

        def simulate(spec):
            if spec.label == "bad":
                raise RuntimeError("sim exploded")
            return FakeResult(spec.label)

        agent = WorkerAgent(
            LocalTransport(coord), capacity=2, once=True, simulate=simulate
        )
        assert agent.run() == 0
        assert good.result(timeout=1).label == "good"
        with pytest.raises(WorkerPointError, match="sim exploded"):
            bad.result(timeout=1)
        assert agent.points_done == 1
        assert agent.points_failed == 1

    def test_draining_coordinator_stops_idle_agent(self):
        coord = ClusterCoordinator()
        coord.drain()
        agent = WorkerAgent(
            LocalTransport(coord),
            capacity=1,
            simulate=lambda spec: FakeResult(spec.label),
        )
        assert agent.run() == 0  # empty draining grant -> clean exit
        assert agent.leases_done == 0

    def test_agent_drain_releases_unstarted_points(self):
        coord = ClusterCoordinator(lease_ttl=30.0, batch=4)
        specs = [one_spec(i, f"p{i}") for i in (1, 2, 3)]
        futures = [coord.submit(spec, None) for spec in specs]
        agent_box = {}

        def simulate(spec):
            agent_box["agent"].drain()  # SIGTERM mid-lease
            return FakeResult(spec.label)

        agent = WorkerAgent(
            LocalTransport(coord), capacity=3, simulate=simulate
        )
        agent_box["agent"] = agent
        assert agent.run() == 0
        # First point finished its boundary; the rest were released and
        # requeued with their original futures, uncharged.
        assert futures[0].result(timeout=1).label == "p1"
        assert not futures[1].done() and not futures[2].done()
        assert coord.pending_count() == 2
        assert agent.points_done == 1

    def test_fingerprint_mismatch_aborts_lease(self):
        coord = ClusterCoordinator(lease_ttl=30.0, batch=4)
        future = coord.submit(one_spec(1, "p1"), None)
        agent = WorkerAgent(
            LocalTransport(coord),
            capacity=1,
            simulate=lambda spec: FakeResult(spec.label),
        )
        agent._register()
        grant = coord.lease(protocol.lease_request(agent.worker_id, 4))
        points = grant["points"]
        points[0]["fingerprint"] = "deadbeef" * 8
        agent._run_lease(grant["lease_id"], points)
        with pytest.raises(WorkerLeaseError, match="fingerprint mismatch"):
            future.result(timeout=1)

    def test_reregisters_on_unknown_worker(self):
        coord = ClusterCoordinator()
        agent = WorkerAgent(
            LocalTransport(coord),
            capacity=1,
            simulate=lambda spec: FakeResult(spec.label),
        )
        agent._register()
        old = agent.worker_id
        # Coordinator restarted and forgot us: the transport error
        # handler re-registers under a fresh id and retries.
        assert agent._handle_transport_error(
            "lease", protocol.UnknownWorker(old)
        )
        assert agent.worker_id != old
        assert len(coord.workers_snapshot()) == 2


# ----------------------------------------------------------------------
# scheduler integration (cluster / hybrid backends)
# ----------------------------------------------------------------------


@pytest.fixture()
def cluster_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    monkeypatch.setenv("REPRO_NO_MANIFEST", "1")


class TestSchedulerBackends:
    def test_backend_validation(self):
        with pytest.raises(ConfigError, match="backend"):
            JobScheduler(workers=1, backend="bogus")
        s = JobScheduler(workers=1, backend="local")
        assert s.coordinator is None
        s.stop()

    def test_cluster_backend_serves_via_agent(self, cluster_env):
        s = JobScheduler(workers=1, backend="cluster")
        job = s.submit(
            JobRequest("a", [one_spec(1, "p1"), one_spec(2, "p2")], SCALE)
        )
        s.start()
        agent = WorkerAgent(
            LocalTransport(s.coordinator),
            capacity=1,
            name="local-agent",
            simulate=lambda spec: FakeResult(spec.label),
        )
        thread = threading.Thread(target=agent.run, daemon=True)
        thread.start()
        wait_terminal([job])
        agent.drain()
        thread.join(timeout=5)
        s.stop()
        assert job.state == "done"
        assert [r.label for r in job.results] == ["p1", "p2"]
        assert all(r.worker_id == agent.worker_id for r in job.results)
        text = s.registry.render_text()
        assert "cluster_points_remote_total 2" in text
        assert 'serve_points_total{source="simulated"} 2' in text

    def test_hybrid_backend_embedded_agent(self, cluster_env):
        calls = []

        def simulate(spec, run_dir):
            calls.append(spec.label)
            return FakeResult(spec.label)

        s = JobScheduler(workers=1, backend="hybrid", simulate=simulate)
        job = s.submit(JobRequest("a", [one_spec(1, "p1")], SCALE))
        s.start()
        wait_terminal([job])
        s.stop()
        assert job.state == "done"
        assert calls == ["p1"]
        names = [w["name"] for w in s.coordinator.workers_snapshot()]
        assert names == ["embedded"]
        assert (
            "cluster_points_remote_total 1" in s.registry.render_text()
        )

    def test_lease_expiry_requeues_and_charges_attempt(self, monkeypatch):
        """The acceptance flow, in-process: a worker leases a point and
        goes silent; the lease expires, the scheduler charges an attempt
        and requeues, and a healthy worker finishes the job. The
        manifest records attempts=2 with the healthy worker's id."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0")
        monkeypatch.setenv("REPRO_CLUSTER_LEASE_TTL_S", "0.3")
        s = JobScheduler(workers=1, backend="cluster")
        job = s.submit(JobRequest("expiry", [one_spec(1, "p1")], SCALE))
        s.start()
        coord = s.coordinator
        deadline = time.monotonic() + 5
        while coord.pending_count() < 1:
            assert time.monotonic() < deadline, "point never enqueued"
            time.sleep(0.005)
        # The doomed worker grabs the lease and is never heard from again.
        doomed = register(coord, capacity=4, name="doomed")
        grant = coord.lease(protocol.lease_request(doomed, 4))
        assert len(grant["points"]) == 1
        agent = WorkerAgent(
            LocalTransport(coord),
            capacity=1,
            name="healthy",
            simulate=lambda spec: FakeResult(spec.label),
        )
        thread = threading.Thread(target=agent.run, daemon=True)
        thread.start()
        wait_terminal([job])
        agent.drain()
        thread.join(timeout=5)
        s.stop()
        assert job.state == "done"
        assert job.retried_points == 1
        manifest = job_manifest(job)
        assert manifest.status == "done"
        assert manifest.points[0].attempts == 2
        assert manifest.points[0].worker_id == agent.worker_id
        assert manifest.points[0].worker_id != doomed
        states = {
            w["name"]: w["state"] for w in coord.workers_snapshot()
        }
        assert states["doomed"] == "lost"
        text = s.registry.render_text()
        assert "cluster_lease_expired_total 1" in text
        assert "serve_point_retries_total 1" in text


# ----------------------------------------------------------------------
# HTTP layer + subprocess workers
# ----------------------------------------------------------------------


@pytest.fixture()
def make_cluster_server(cluster_env):
    created = []

    def factory(backend: str = "cluster"):
        scheduler = JobScheduler(workers=1, backend=backend)
        server = create_server(port=0, scheduler=scheduler)
        scheduler.start()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        created.append((server, scheduler))
        host, port = server.server_address[:2]
        return ClusterClient(f"http://{host}:{port}"), scheduler

    yield factory
    for server, scheduler in created:
        server.shutdown()
        server.server_close()
        scheduler.stop(wait=False)


class TestClusterHTTP:
    def test_workers_endpoint_requires_cluster_backend(
        self, make_cluster_server
    ):
        client, _scheduler = make_cluster_server(backend="local")
        with pytest.raises(ServeError) as err:
            client.workers()
        assert err.value.status == 404
        assert "backend" in err.value.payload["error"]

    def test_register_lease_over_http_with_error_mapping(
        self, make_cluster_server
    ):
        client, scheduler = make_cluster_server()
        # 400: bad protocol version; 409: salt mismatch; 404: unknown id.
        with pytest.raises(ServeError) as err:
            client.register({"protocol": 99})
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.register(
                protocol.register_request("wrong-salt", 1, "h", 1)
            )
        assert err.value.status == 409
        with pytest.raises(ServeError) as err:
            client.lease(protocol.lease_request("w-missing", 1))
        assert err.value.status == 404
        reply = client.register(
            protocol.register_request(
                pointcache.code_salt(), 1, "h", 1, name="http-w"
            )
        )
        assert reply["protocol"] == protocol.PROTOCOL_VERSION
        grant = client.lease(protocol.lease_request(reply["worker_id"], 1))
        assert grant["lease_id"] is None  # empty queue
        listing = client._request("GET", "/workers")
        assert listing["backend"] == "cluster"
        assert [w["name"] for w in listing["workers"]] == ["http-w"]
        health = client.healthz()
        assert health["backend"] == "cluster"
        assert health["cluster"]["workers"] == 1

    def test_timeline_cli_lists_fleet(
        self, make_cluster_server, capsys, tmp_path
    ):
        from repro.report.timeline import main as timeline_main

        client, _scheduler = make_cluster_server()
        reply = client.register(
            protocol.register_request(
                pointcache.code_salt(), 1, "h", 1, name="cli-w"
            )
        )
        assert (
            timeline_main(
                [
                    "--list",
                    "--runs-dir",
                    str(tmp_path / "empty"),
                    "--coordinator",
                    client.base_url,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no runs under" in out  # --list section still printed
        assert "cluster at" in out
        assert reply["worker_id"] in out
        assert "name=cli-w" in out

    def test_worker_subprocess_once(self, make_cluster_server):
        client, scheduler = make_cluster_server()
        job = scheduler.submit(JobRequest("once", [one_spec(5, "p5")], SCALE))
        proc = spawn_worker(client.base_url, "--once", "--name", "sub-once")
        try:
            assert proc.wait(timeout=120) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        wait_terminal([job], timeout=10)
        assert job.state == "done"
        assert job.results[0].label == "p5"
        assert job.results[0].worker_id  # stamped by the coordinator


class TestClusterEndToEnd:
    def test_worker_crash_recovers_bit_identical(self, monkeypatch):
        """Acceptance: submit to a coordinator, let a worker crash
        mid-lease (injected ``worker_crash``), and the job still
        finishes bit-identical to a single-process ``run_points`` — the
        kill visible as an expired lease + retry in metrics and in the
        manifest."""
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0")
        monkeypatch.setenv("REPRO_CLUSTER_LEASE_TTL_S", "1.0")
        specs = [one_spec(1, "p1"), one_spec(2, "p2")]
        local_rows = [
            point_row(p, SCALE) for p in run_points(specs, max_workers=1)
        ]

        scheduler = JobScheduler(workers=1, backend="cluster")
        server = create_server(port=0, scheduler=scheduler)
        scheduler.start()
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        client = ClusterClient(url)
        procs = []
        try:
            job = scheduler.submit(JobRequest("crash-e2e", specs, SCALE))
            doomed = spawn_worker(
                url,
                "--name",
                "doomed",
                env_extra={"REPRO_FAULT_SPEC": "worker_crash@point=0"},
            )
            procs.append(doomed)
            # The injected fault hard-kills the worker at its first
            # simulation start — mid-lease, heartbeats stop.
            assert doomed.wait(timeout=60) == faults.CRASH_EXIT_CODE
            deadline = time.monotonic() + 30
            while (
                client.metrics().get("cluster_lease_expired_total", 0) < 1
            ):
                assert time.monotonic() < deadline, "lease never expired"
                time.sleep(0.1)
            healthy = spawn_worker(url, "--name", "healthy")
            procs.append(healthy)
            wait_terminal([job], timeout=120)
            assert job.state == "done", job.error

            def strip(row):
                return {k: v for k, v in row.items() if k != "sim_seconds"}

            rows = [point_row(p, SCALE) for p in job.results]
            assert [strip(r) for r in rows] == [
                strip(r) for r in local_rows
            ]
            manifest = job_manifest(job)
            # The doomed worker (capacity 1) leased exactly p1 and died
            # on it: one charged attempt, requeued, re-run by healthy.
            attempts = {p.label: p.attempts for p in manifest.points}
            assert attempts == {"p1": 2, "p2": 1}
            fleet = {w["name"]: w for w in client.workers()}
            assert fleet["doomed"]["state"] == "lost"
            assert {p.worker_id for p in manifest.points} == {
                fleet["healthy"]["worker_id"]
            }
            # SIGTERM drains the healthy worker cleanly.
            healthy.send_signal(signal.SIGTERM)
            assert healthy.wait(timeout=30) == 0
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
            server.shutdown()
            server.server_close()
            scheduler.stop(wait=False)
