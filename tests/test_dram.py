"""Unit tests for the DRAM load-latency model and event sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.mem.dram import MAX_STABLE_UTILIZATION, DramModel, DramSampler
from repro.params import MemoryParams


def make_model(channels=4, efficiency=0.6) -> DramModel:
    return DramModel(
        MemoryParams(num_channels=channels, efficiency=efficiency), freq_ghz=3.2
    )


class TestDramModel:
    def test_idle_latency_at_zero_demand(self):
        m = make_model()
        assert m.avg_latency_cycles(0.0) == pytest.approx(
            m.params.idle_latency_cycles
        )

    def test_latency_monotone_in_demand(self):
        m = make_model()
        demands = np.linspace(0, m.usable_bandwidth_gbps * 0.9, 20)
        lats = [m.avg_latency_cycles(d) for d in demands]
        assert all(b >= a for a, b in zip(lats, lats[1:]))

    def test_latency_blows_up_near_saturation(self):
        m = make_model()
        near = m.avg_latency_cycles(0.97 * m.usable_bandwidth_gbps)
        mid = m.avg_latency_cycles(0.5 * m.usable_bandwidth_gbps)
        assert near > 5 * mid

    def test_latency_capped_beyond_stability(self):
        m = make_model()
        over = m.avg_latency_cycles(2.0 * m.usable_bandwidth_gbps)
        at_cap = m.avg_latency_cycles(
            MAX_STABLE_UTILIZATION * m.usable_bandwidth_gbps
        )
        assert over == pytest.approx(at_cap)

    def test_utilization_and_stability(self):
        m = make_model()
        half = 0.5 * m.usable_bandwidth_gbps
        assert m.utilization(half) == pytest.approx(0.5)
        assert m.is_stable(half)
        assert not m.is_stable(m.usable_bandwidth_gbps)

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigError):
            make_model().utilization(-1.0)

    def test_p99_exceeds_mean_under_load(self):
        m = make_model()
        d = 0.7 * m.usable_bandwidth_gbps
        assert m.p99_latency_cycles(d) > m.avg_latency_cycles(d)

    def test_more_channels_lower_latency_at_same_demand(self):
        """Figure 8 mechanism: provisioning more channels relieves load."""
        demand = 30.0
        lat4 = make_model(channels=4).avg_latency_cycles(demand)
        lat8 = make_model(channels=8).avg_latency_cycles(demand)
        assert lat8 < lat4

    def test_latency_cdf_is_valid_distribution(self):
        m = make_model()
        lat, cdf = m.latency_cdf(0.6 * m.usable_bandwidth_gbps)
        assert np.all(np.diff(lat) > 0)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] == pytest.approx(0.0, abs=1e-9)
        assert cdf[-1] > 0.99
        assert lat[0] == pytest.approx(m.params.idle_latency_cycles)

    def test_service_cycles_per_block_scale(self):
        m = make_model()
        # 64B over 25.6 GB/s * 0.6 at 3.2 GHz ~ 13.3 cycles
        assert m.service_cycles_per_block() == pytest.approx(13.33, rel=0.01)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigError):
            DramModel(MemoryParams(), freq_ghz=0)

    @given(st.floats(0.0, 0.95))
    @settings(max_examples=30, deadline=None)
    def test_queueing_delay_nonnegative(self, frac):
        m = make_model()
        assert m.queueing_cycles(frac * m.usable_bandwidth_gbps) >= 0.0


class TestDramSampler:
    def make(self, channels=2) -> DramSampler:
        return DramSampler(
            MemoryParams(num_channels=channels, channel_peak_gbps=1.0),
            freq_ghz=3.2,
            rng=np.random.default_rng(5),
        )

    def test_channel_interleave(self):
        s = self.make(channels=2)
        assert s.channel_of_block(0) == 0
        assert s.channel_of_block(1) == 1
        assert s.channel_of_block(2) == 0

    def test_unloaded_read_sees_idle_latency(self):
        s = self.make()
        lat = s.read(0, now_cycles=0.0)
        assert lat == pytest.approx(s.params.idle_latency_cycles)

    def test_back_to_back_reads_queue(self):
        s = self.make()
        first = s.read(0, now_cycles=0.0)
        second = s.read(2, now_cycles=0.0)  # same channel, same instant
        assert second > first

    def test_writes_consume_bandwidth_but_not_latency_stats(self):
        s = self.make()
        s.write(0, now_cycles=0.0)
        assert s.read_latencies == []
        lat = s.read(2, now_cycles=0.0)  # queued behind the write
        assert lat > s.params.idle_latency_cycles

    def test_stats_helpers(self):
        s = self.make()
        for i in range(100):
            s.read(i, now_cycles=float(i) * 1000.0)
        assert s.mean_latency() > 0
        assert s.percentile(99) >= s.percentile(50)
        s.reset_stats()
        with pytest.raises(ConfigError):
            s.mean_latency()

    def test_high_rate_increases_observed_latency(self):
        slow = self.make()
        fast = self.make()
        for i in range(2000):
            slow.read(i, now_cycles=float(i) * 1e4)
            fast.read(i, now_cycles=float(i) * 10.0)
        assert fast.mean_latency() > slow.mean_latency()
