"""Unit tests for RX/TX descriptor rings."""

import pytest

from repro.errors import ProtocolError
from repro.mem.layout import AddressSpace, RegionKind
from repro.nic.rings import RxRing, TxRing, build_rings


def make_rx(entries=4, blocks=2) -> RxRing:
    space = AddressSpace()
    region = space.allocate("rx", entries * blocks * 64, RegionKind.RX_BUFFER)
    return RxRing(0, region, entries, blocks)


class TestGeometry:
    def test_slot_blocks_are_contiguous_and_wrap(self):
        ring = make_rx(entries=4, blocks=2)
        base = ring.region.start_block
        assert list(ring.slot_blocks(0)) == [base, base + 1]
        assert list(ring.slot_blocks(3)) == [base + 6, base + 7]
        assert list(ring.slot_blocks(4)) == [base, base + 1]  # wraps

    def test_slot_address_is_byte_address(self):
        ring = make_rx(entries=4, blocks=2)
        assert ring.slot_address(1) == ring.region.start + 128

    def test_footprint(self):
        ring = make_rx(entries=4, blocks=2)
        assert ring.footprint_bytes == 4 * 2 * 64

    def test_region_too_small_rejected(self):
        space = AddressSpace()
        region = space.allocate("rx", 64, RegionKind.RX_BUFFER)
        with pytest.raises(ProtocolError):
            RxRing(0, region, 4, 2)


class TestRxFlow:
    def test_post_consume_fifo(self):
        ring = make_rx()
        assert ring.post() == 0
        assert ring.post() == 1
        assert ring.consume() == 0
        assert ring.consume() == 1

    def test_backlog_and_free(self):
        ring = make_rx(entries=4)
        assert ring.backlog == 0
        ring.post()
        ring.post()
        assert ring.backlog == 2
        assert ring.free_entries == 2
        ring.consume()
        assert ring.backlog == 1

    def test_overflow_drops(self):
        ring = make_rx(entries=2)
        assert ring.post() is not None
        assert ring.post() is not None
        assert ring.post() is None
        assert ring.drops == 1
        assert ring.posted == 2
        assert ring.drop_rate() == pytest.approx(1 / 3)

    def test_consume_empty_raises(self):
        ring = make_rx()
        with pytest.raises(ProtocolError):
            ring.consume()

    def test_drop_rate_zero_without_attempts(self):
        assert make_rx().drop_rate() == 0.0

    def test_slot_reuse_after_wrap(self):
        ring = make_rx(entries=2, blocks=1)
        first = ring.post()
        ring.consume()
        ring.post()
        ring.consume()
        third = ring.post()
        assert list(ring.slot_blocks(third)) == list(ring.slot_blocks(first))


class TestTxRing:
    def test_acquire_cycles_round_robin(self):
        space = AddressSpace()
        region = space.allocate("tx", 2 * 64, RegionKind.TX_BUFFER)
        ring = TxRing(0, region, 2, 1)
        s0, s1, s2 = ring.acquire(), ring.acquire(), ring.acquire()
        assert list(ring.slot_blocks(s2)) == list(ring.slot_blocks(s0))
        assert list(ring.slot_blocks(s1)) != list(ring.slot_blocks(s0))


class TestBuildRings:
    def test_one_ring_pair_per_core_with_owned_regions(self):
        space = AddressSpace()
        rx, tx = build_rings(space, num_cores=3, rx_entries=8, tx_entries=2,
                             blocks_per_packet=4)
        assert len(rx) == len(tx) == 3
        for core in range(3):
            assert rx[core].region.owner_core == core
            assert rx[core].region.kind is RegionKind.RX_BUFFER
            assert tx[core].region.kind is RegionKind.TX_BUFFER

    def test_rings_do_not_overlap(self):
        space = AddressSpace()
        rx, tx = build_rings(space, 2, 4, 2, 2)
        spans = [(r.region.start, r.region.end) for r in rx + tx]
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_address_space_classifies_ring_blocks(self):
        space = AddressSpace()
        rx, _tx = build_rings(space, 1, 4, 2, 2)
        block = rx[0].slot_blocks(2).start
        assert space.kind_of_block(block) is RegionKind.RX_BUFFER
