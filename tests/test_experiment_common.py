"""Unit tests for the experiment plumbing and CLI."""

import pytest

from repro.errors import ConfigError
from repro.experiments.common import (
    DEFAULT_SCALE,
    ExperimentSettings,
    FigureResult,
    kvs_system,
    kvs_workload,
    l3fwd_workload,
    policy_label,
    run_point,
)
from repro.traffic import MemCategory


class TestSettings:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        monkeypatch.setenv("REPRO_MEASURE", "2.0")
        s = ExperimentSettings.from_env()
        assert s.scale == 0.25
        assert s.measure_multiplier == 2.0

    def test_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        monkeypatch.delenv("REPRO_MEASURE", raising=False)
        s = ExperimentSettings.from_env()
        assert s.scale == DEFAULT_SCALE
        assert s.measure_multiplier == 1.0


class TestHelpers:
    def test_policy_labels(self):
        assert policy_label("dma", 2, False) == "DMA"
        assert policy_label("ideal", 2, False) == "Ideal DDIO"
        assert policy_label("ddio", 6, False) == "DDIO 6 Ways"
        assert policy_label("ddio", 2, True) == "DDIO 2 Ways + Sweeper"

    def test_kvs_system_applies_knobs(self):
        s = kvs_system(0.125, rx_buffers=512, ddio_ways=6, packet_bytes=512,
                       num_channels=8)
        assert s.nic.rx_buffers_per_core == 512
        assert s.nic.ddio_ways == 6
        assert s.nic.packet_bytes == 512
        assert s.memory.num_channels == 8
        assert s.cpu.num_cores == 3

    def test_workload_factories(self):
        kvs = kvs_workload(0.125, 512)
        assert kvs.params.item_bytes == 512
        assert kvs.params.num_keys == 300_000
        nf = l3fwd_workload(1024, l1_resident=True)
        assert nf.params.num_rules == 128
        assert nf.params.packet_blocks == 16


class TestRunPointAndResult:
    @pytest.fixture(scope="class")
    def point(self):
        settings = ExperimentSettings(scale=0.05, measure_multiplier=0.1)
        system = kvs_system(0.05, 64, 2, 512)
        return run_point(
            "p", system, kvs_workload(0.02, 512), "ddio",
            sweeper=True, settings=settings,
        )

    def test_point_carries_trace_profile_perf(self, point):
        assert point.throughput_mrps > 0
        assert point.trace.requests > 0
        assert point.profile.mem_blocks_total == pytest.approx(
            point.trace.mem_accesses_per_request()
        )
        assert MemCategory.RX_EVCT in point.breakdown

    def test_full_scale_extrapolation(self, point):
        assert point.full_scale_mrps(0.05) == pytest.approx(
            point.throughput_mrps / 0.05
        )
        with pytest.raises(ConfigError):
            point.full_scale_mrps(0.0)

    def test_figure_result_lookup_and_render(self, point):
        fig = FigureResult(figure="F", title="t", points=[point], scale=0.05)
        assert fig.point("p") is point
        assert fig.labels() == ["p"]
        with pytest.raises(ConfigError):
            fig.point("missing")
        out = fig.render()
        assert "F: t" in out
        assert "p" in out


class TestCli:
    def test_table1_via_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_unknown_experiment_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["nope"])
